//! Parallel shard scatter-gather execution for the distributed RS-tree.
//!
//! [`crate::DistributedRsTree`] gathers its shards sequentially on the
//! caller's thread; this module is the production-shaped executor: every
//! shard's `RsTree` moves into its own long-lived worker thread, queries
//! are scattered as messages, and sample batches are gathered over
//! channels. The protocol mirrors the paper's cluster deployment — the
//! coordinator talks to shard servers, each of which does its own I/O.
//!
//! ## Protocol
//!
//! Every stream carries a cluster-unique **session** id (allocated from an
//! atomic counter, so [`ParallelRsCluster::sampler`] needs only `&self`
//! and any number of streams can run concurrently over the same worker
//! pool). A worker keeps a table of open streams keyed by session: the
//! frozen-shard sampler, its seeded RNG, and its replay cache all live in
//! the table entry, and every entry carries its *own* reply channel
//! (handed over in the `Open`), so concurrent coordinators can never
//! steal each other's replies.
//!
//! Per query the coordinator scatters [`ShardCmd::Open`] (query, mode, a
//! per-shard RNG seed, the session id, and the reply sender) and collects
//! each shard's exact partial count. Each `next_batch(k)` call then runs
//! three phases:
//!
//! 1. **draw** — the coordinator draws `k` shard indices from the
//!    remaining-count multinomial (the identical bookkeeping the sequential
//!    gather applies per draw, just run as a block);
//! 2. **scatter/gather** — each shard owing `n > 0` samples receives one
//!    [`ShardCmd::Fill`]`{session, n, seq}` and answers with a batch drawn
//!    by its local batched kernel ([`crate::SpatialSampler::next_batch`]);
//! 3. **merge** — replies are interleaved following the drawn index
//!    sequence, *not* arrival order.
//!
//! Phases 1 and 3 — plus the prefetch request arithmetic — live in the
//! sans-I/O [`StreamCore`] state machine. [`ParallelSampler`] drives one
//! core with blocking per-shard channels; the multi-session scheduler in
//! `storm-server` drives many cores at once over one shared reply
//! channel, coalescing every runnable session's fill requests into one
//! [`ShardCmd::FillMany`] per shard per tick (answered by one
//! [`ShardReply::Batches`]), which amortizes channel and wakeup overhead
//! across co-tenant queries. The session lifecycle coalesces the same
//! way: one [`ShardCmd::OpenMany`] per shard opens a whole admission
//! batch (answered by one [`ShardReply::Opens`] of counts) and one
//! [`ShardCmd::CloseMany`] per shard tears down every session finished
//! since the last flush, so per-session channel cost is O(1) amortized
//! rather than O(shards).
//!
//! ## Why the distribution is unchanged
//!
//! Shards partition `P`, so the merged without-replacement stream needs no
//! deduplication; conditioned on the drawn shard sequence, each shard's
//! batch is a uniform WOR run of its remaining points, and re-interleaving
//! by the drawn sequence reproduces the sequential gather's joint
//! distribution exactly.
//!
//! ## Determinism under a fixed seed
//!
//! Merge order is a pure function of the coordinator's RNG (phase 1) and
//! each shard's batch is a pure function of that shard's seeded RNG, so the
//! emitted stream is identical across runs regardless of thread
//! scheduling. Only I/O-counter interleavings vary. Crucially this holds
//! *per session* under co-tenancy: a worker's per-stream state is keyed by
//! session, request sizes are a pure function of session-local
//! [`StreamCore`] state, and the worker's batched WOR kernel sees exactly
//! the same fill-size sequence whether the stream runs alone or
//! interleaved with a thousand others — so a session's emitted sequence
//! depends only on its own seed, never on co-tenant scheduling.
//!
//! ## Fault tolerance
//!
//! The executor is fail-soft, not fail-stop. Three mechanisms cooperate
//! (see `DESIGN.md` §9 for the full failure model):
//!
//! - **Panic containment** — a worker serves each open and each fill under
//!   `catch_unwind`, so a panic (genuine or injected) poisons only the one
//!   stream it hit, never the shard's tree or any co-tenant stream: the
//!   poisoned entry keeps its reply channel, answers every later fill with
//!   [`ShardReply::Aborted`], and the worker keeps serving everything
//!   else. [`ParallelRsCluster::join`] reassembles the cluster without
//!   `resume_unwind`.
//! - **Timeout + bounded retry** — when recovery is active (a
//!   [`FaultHook`] is installed or a [`RetryPolicy`] was set), gathers use
//!   `recv_timeout` with exponential backoff and re-send the *same*
//!   sequence number; workers cache the last served batch per stream and
//!   replay it on a duplicate `seq`, so a retried fill can never advance a
//!   without-replacement stream twice. With recovery inactive the gather
//!   path is the original blocking `recv` — zero overhead.
//! - **Graceful degradation** — a shard that exhausts its retries (or
//!   aborts, or disconnects) is written out of the query: its remaining
//!   mass is removed from the draw weights, the stream continues over the
//!   survivors, and the loss is recorded in a [`DegradedInfo`] surfaced
//!   through [`crate::SpatialSampler::degraded`] so the estimator layer
//!   can widen its confidence interval by the missing-mass bound.
//!
//! Fault injection itself lives in `storm-faultkit`: a [`FaultHook`] is a
//! pure function of `(site, shard, op)`, so an injected schedule of drops,
//! panics, and delays replays identically run over run — the fault-matrix
//! suite exercises exactly that.
//!
//! ## Atomic-counter ordering policy
//!
//! Every statistics counter in this module (`dropped_sends`, the session
//! allocator) uses `Ordering::Relaxed`, and only `Relaxed` — the single
//! policy documented on [`ParallelRsCluster`]. These atomics publish no
//! other memory: exactness comes from the atomic RMW itself, and no
//! consumer infers "happened-before" from a counter value. Reads are
//! point-in-time snapshots. The policy is pinned by an assertion-based
//! stress test (`dropped_send_counter_is_exact_under_contention`) driven
//! by `storm_testkit::stress_concurrent`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use storm_faultkit::{DegradedInfo, FailReason, FaultHook, FaultKind, FaultSite, RetryPolicy};
use storm_geo::curve::HilbertCurve;
use storm_geo::Rect2;
use storm_rtree::Item;

use crate::rs_tree::RsTree;
use crate::{mix64, DistributedRsTree, FrozenSampler, SampleMode, SamplerKind, SpatialSampler};

/// Everything a worker needs to open one sampling stream.
struct OpenArgs {
    /// The range query.
    query: Rect2,
    /// With or without replacement.
    mode: SampleMode,
    /// Seed for the worker's stream-local RNG.
    seed: u64,
    /// Coordinator-assigned stream identity; the worker's stream-table key,
    /// echoed by every reply so coordinators can route by tag.
    session: u64,
    /// Fault-injection hook for this stream (test/chaos runs only).
    hook: Option<Arc<dyn FaultHook>>,
    /// Whether the coordinator may retry fills: enables the worker-side
    /// batch replay cache (skipped entirely on the fast path).
    recover: bool,
    /// Where this stream's replies go. Each coordinator hands every stream
    /// its own channel, so concurrent sessions never share a reply queue
    /// (the multi-session scheduler deliberately passes one shared channel
    /// for all *its* sessions and routes by the echoed tags).
    reply: Sender<ShardReply>,
}

/// Everything a worker needs to serve one coalesced [`ShardCmd::OpenMany`]:
/// the per-session specs (stream seeds already shard-derived) plus the
/// batch-shared plumbing — one hook, one recover flag, one reply channel.
struct OpenManyArgs {
    /// One spec per opening session, in admission order.
    reqs: Vec<OpenSpec>,
    /// Fault-injection hook shared by the whole batch.
    hook: Option<Arc<dyn FaultHook>>,
    /// Whether fills may be retried (enables the replay cache).
    recover: bool,
    /// The one channel every stream in the batch replies on.
    reply: Sender<ShardReply>,
}

/// One session's shard-local slice of an [`OpenManyArgs`] batch.
struct OpenSpec {
    /// Coordinator-assigned stream identity.
    session: u64,
    /// The range query.
    query: Rect2,
    /// With or without replacement.
    mode: SampleMode,
    /// Stream seed, already derived for this shard.
    seed: u64,
}

/// One session's slice of a coalesced [`ShardCmd::FillMany`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillReq {
    /// The stream to draw from.
    pub session: u64,
    /// Samples owed to this session this round.
    pub n: usize,
    /// The session's scatter-round number (its retry/replay key).
    pub seq: u64,
}

/// One session's slice of a coalesced [`ShardCmd::OpenMany`].
#[derive(Debug, Clone, Copy)]
pub struct OpenReq {
    /// Coordinator-assigned stream identity.
    pub session: u64,
    /// The range query.
    pub query: Rect2,
    /// With or without replacement.
    pub mode: SampleMode,
    /// The *session* seed; [`ParallelRsCluster::open_many`] derives each
    /// shard's stream seed from it exactly as the per-session open does,
    /// so coalesced and sequential opens produce identical streams.
    pub seed: u64,
}

/// One session's slice of a coalesced [`ShardReply::Opens`].
#[derive(Debug, Clone, Copy)]
pub struct SessionOpen {
    /// The opened stream.
    pub session: u64,
    /// The shard's exact `|P_s ∩ Q|`, or `None` when the open panicked
    /// and the stream is stillborn (the coalesced analogue of
    /// [`ShardReply::Aborted`]).
    pub count: Option<usize>,
}

/// One session's slice of a coalesced [`ShardReply::Batches`].
#[derive(Debug, Clone)]
pub struct SessionBatch {
    /// The stream the batch belongs to.
    pub session: u64,
    /// Echo of the fill's scatter-round number.
    pub seq: u64,
    /// The drawn samples, or `None` when the stream is poisoned (the
    /// coalesced analogue of [`ShardReply::Aborted`]).
    pub items: Option<Vec<Item<2>>>,
}

/// Coordinator → shard-worker messages.
enum ShardCmd {
    /// Open a sampling stream; the worker replies [`ShardReply::Opened`].
    /// Re-sending `Open` for the same session restarts the stream
    /// (identical seed → identical stream), which is how open-phase
    /// retries work.
    Open(Box<OpenArgs>),
    /// Draw up to `n` samples from the open stream; the worker replies
    /// [`ShardReply::Batch`] with the same `seq`/`session`. A repeated
    /// `seq` replays the cached batch instead of advancing the stream.
    Fill {
        /// The stream to draw from.
        session: u64,
        /// Samples owed.
        n: usize,
        /// Scatter-round number within the stream.
        seq: u64,
    },
    /// The scheduler's coalesced form: every runnable session's fill for
    /// this shard in one message, answered by one
    /// [`ShardReply::Batches`]. All named sessions must share one reply
    /// channel (the scheduler invariant); the worker replies on the first
    /// named stream's channel.
    FillMany(Vec<FillReq>),
    /// The scheduler's coalesced open: every session admitted at one tick
    /// boundary opens on this shard in one message, answered by one
    /// [`ShardReply::Opens`] carrying every count. All named sessions
    /// share the one reply channel (the scheduler invariant).
    OpenMany(Box<OpenManyArgs>),
    /// Tear down one session's stream (no reply).
    Close {
        /// The stream to drop.
        session: u64,
    },
    /// The scheduler's coalesced close: every session finished since the
    /// last flush torn down in one message (no reply).
    CloseMany(Vec<u64>),
    /// Epoch handoff: replace this shard's tree with a re-frozen snapshot
    /// (no reply). Channel FIFO order is the handoff contract: opens sent
    /// before the swap see the old snapshot, opens sent after see the new
    /// one, and in-flight streams keep the snapshot `Arc` they pinned at
    /// open, so no open session ever observes the switch.
    Swap(Box<RsTree<2>>),
    /// Exit the worker loop, returning the shard tree to the joiner.
    Shutdown,
}

/// Shard-worker → coordinator messages. Public so the `storm-server`
/// scheduler can drive the session protocol directly over
/// [`ParallelRsCluster::open_session`] / [`ParallelRsCluster::fill_many`];
/// single-query users never see these (use [`ParallelRsCluster::sampler`]).
#[derive(Debug)]
pub enum ShardReply {
    /// Stream opened; `count` is the shard's exact `|P_s ∩ Q|`.
    Opened {
        /// The replying shard (coordinators with a shared reply channel
        /// route by this).
        shard: usize,
        /// The shard's partial result count.
        count: usize,
        /// Echo of the opening session.
        session: u64,
    },
    /// Samples for one [`ShardCmd::Fill`] (possibly short when the shard's
    /// stream ended).
    Batch {
        /// The replying shard.
        shard: usize,
        /// The drawn (or replayed) samples.
        items: Vec<Item<2>>,
        /// Echo of the fill's scatter-round number.
        seq: u64,
        /// Echo of the stream session.
        session: u64,
    },
    /// The stream died to a contained panic. The shard's tree survives for
    /// other streams, but this one is over: the coordinator writes the
    /// shard off.
    Aborted {
        /// The replying shard.
        shard: usize,
        /// Session of the stream that died.
        session: u64,
    },
    /// The coalesced answer to one [`ShardCmd::FillMany`]: one entry per
    /// served session (per-session aborts ride along as `items: None`).
    Batches {
        /// The replying shard.
        shard: usize,
        /// One slice per session named in the request.
        replies: Vec<SessionBatch>,
    },
    /// The coalesced answer to one [`ShardCmd::OpenMany`]: one entry per
    /// opened session (stillborn opens ride along as `count: None`).
    Opens {
        /// The replying shard.
        shard: usize,
        /// One slice per session named in the request.
        opens: Vec<SessionOpen>,
    },
}

/// Typed error from [`ParallelRsCluster`] teardown paths: the shard's
/// command channel was already disconnected (its worker thread is gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloseError {
    /// Index of the unreachable shard.
    pub shard: usize,
}

impl std::fmt::Display for CloseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} worker unreachable (channel closed)",
            self.shard
        )
    }
}

impl std::error::Error for CloseError {}

/// Result of [`ParallelRsCluster::try_join`]: the reassembled sequential
/// cluster plus any shards whose trees were lost to uncaught worker-thread
/// panics (panics *inside* a stream are contained and never reach here).
#[derive(Debug)]
pub struct JoinOutcome {
    /// The cluster rebuilt from the surviving shards, with the lost
    /// shards' curve ranges merged into their successors.
    pub tree: DistributedRsTree,
    /// Indices (in pre-join numbering) of shards whose trees were lost.
    pub lost_shards: Vec<usize>,
}

/// One shard server: the command channel plus the thread owning the
/// shard's `RsTree`. Replies travel over per-stream channels carried in
/// each `Open`, so the handle itself is send-only and freely shared by
/// concurrent coordinators.
struct WorkerHandle {
    cmd: Sender<ShardCmd>,
    thread: Option<JoinHandle<RsTree<2>>>,
    /// Points owned by this shard (recorded before the move; refreshed by
    /// epoch swaps — Relaxed, see the cluster's counter ordering policy).
    len: AtomicUsize,
    /// This shard's index (for fault coordinates and error reporting).
    shard: usize,
    /// Cluster-wide count of control sends that found a dead worker.
    /// Ordering policy: `Relaxed` everywhere (see the module docs).
    dropped_sends: Arc<AtomicU64>,
}

impl WorkerHandle {
    /// Sends `Close` for one session, reporting (rather than swallowing)
    /// an unreachable worker.
    fn close(&self, session: u64) -> Result<(), CloseError> {
        self.cmd
            .send(ShardCmd::Close { session })
            .map_err(|_| CloseError { shard: self.shard })
    }

    /// Log-and-count a control send that found the worker gone.
    fn note_dropped_send(&self, what: &str) {
        self.dropped_sends.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "storm-core: parallel: {what} to shard {} dropped (worker gone)",
            self.shard
        );
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if self.cmd.send(ShardCmd::Shutdown).is_err() {
            self.note_dropped_send("shutdown");
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle")
            .field("shard", &self.shard)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// Live per-stream state in a worker's session table.
struct StreamState {
    /// The frozen-kernel sampler for this stream's query.
    sampler: FrozenSampler<2>,
    /// The stream-local seeded RNG.
    rng: StdRng,
    /// Fault-injection hook (test/chaos runs only).
    hook: Option<Arc<dyn FaultHook>>,
    /// Whether to populate the replay cache.
    recover: bool,
    /// Monotone count of fills received on this stream: the op coordinate
    /// for fill-site fault decisions. A retried fill is a new op, so a
    /// transient injected fault doesn't condemn every retry with it.
    fill_ops: u64,
    /// Replay cache: the last served scatter-round and its batch. A
    /// duplicate seq means the coordinator never saw our reply and
    /// retried; replaying the cache keeps the WOR stream exact (drawing
    /// afresh would silently discard the cached samples). Only populated
    /// when the coordinator can actually retry.
    cache: Option<(u64, Vec<Item<2>>)>,
}

/// A stream's lifecycle slot in a worker's session table.
///
/// Streams materialise lazily: the open answers its count from an
/// allocation-free descent ([`crate::FrozenRsTree::exact_count`]) and
/// parks the spec; the sampler — cone carve, alias selector, stream RNG —
/// is built on the *first fill*. Shards outside a query's support have
/// weight 0, are never asked for samples, and therefore never build any
/// stream state: for selective queries over many shards the open cost
/// collapses from O(shards · sampler builds) to O(shards · count
/// descents) + O(touched shards · sampler builds).
enum StreamSlot {
    /// Opened, never filled: everything needed to build the sampler on
    /// first touch. Rebuilding from the parked spec is exact — no RNG
    /// state advances at open time, so the stream drawn later is
    /// identical to one built eagerly.
    Lazy {
        /// The shard snapshot this stream is pinned to. Captured at open
        /// time so an epoch swap ([`ShardCmd::Swap`]) between open and
        /// first fill cannot change the stream's view: a session always
        /// samples the epoch it opened against, byte-identically.
        frozen: Arc<crate::FrozenRsTree<2>>,
        /// The range query.
        query: Rect2,
        /// With or without replacement.
        mode: SampleMode,
        /// Stream seed (already shard-derived).
        seed: u64,
        /// Fault-injection hook (test/chaos runs only).
        hook: Option<Arc<dyn FaultHook>>,
        /// Whether to populate the replay cache.
        recover: bool,
    },
    /// Materialised and serving fills.
    Ready(Box<StreamState>),
    /// Dead to a contained panic; the entry (and its reply channel)
    /// survives so later fills are answered `Aborted` promptly instead
    /// of timing out.
    Poisoned,
}

/// One entry in a worker's session table.
struct StreamEntry {
    /// Where this stream's replies go.
    reply: Sender<ShardReply>,
    /// The stream's lifecycle slot.
    slot: StreamSlot,
}

/// What one fill against one stream produced.
enum FillOutcome {
    /// A batch to send back.
    Served(Vec<Item<2>>),
    /// An injected DropReply: the stream advanced but the reply is lost.
    DroppedReply,
    /// The stream is poisoned (was already, or this fill's panic was
    /// contained and poisoned it).
    Poisoned,
}

/// The worker loop: serve any number of concurrently open streams over
/// the shard's own tree until shutdown, then hand the tree back through
/// the join handle.
///
/// Opens and fills run under `catch_unwind`, so a panic while serving —
/// injected by a [`FaultHook`] or genuine — poisons only the stream it
/// hit. The tree survives, the stream's coordinator is told via
/// [`ShardReply::Aborted`], and the worker keeps serving every other
/// stream.
fn run_shard(mut tree: RsTree<2>, shard: usize, cmd: &Receiver<ShardCmd>) -> RsTree<2> {
    // Freeze once at worker start (and again per epoch swap): every stream
    // this worker serves runs the read-optimized kernel (SoA arena + alias
    // descents) instead of walking the boxed tree. The boxed tree is kept
    // intact purely as the ingest-facing form handed back at join time.
    let mut frozen = Arc::new(tree.freeze());
    // The session table: every open stream (or poisoned husk thereof).
    let mut streams: HashMap<u64, StreamEntry> = HashMap::new();
    // Monotone count of streams opened on this worker: the op coordinate
    // for open-site fault decisions.
    let mut open_ops: u64 = 0;
    loop {
        // storm-analyzer: allow(A5): worker command loop — each recv is one control message (Open/FillMany/Close/Shutdown); items never travel here
        // storm-analyzer: allow(A13): parking on the command channel IS the worker's idle state; every coordinator dropping disconnects the recv and exits below
        let msg = match cmd.recv() {
            Ok(m) => m,
            Err(_) => return tree, // every coordinator dropped: exit
        };
        match msg {
            ShardCmd::Shutdown => return tree,
            ShardCmd::Swap(new_tree) => {
                // Epoch handoff: subsequent opens snapshot the new frozen
                // form; streams already tabled keep their pinned Arcs (in
                // `StreamSlot::Lazy` or inside their `FrozenSampler`), so
                // open sessions are untouched. The old snapshot is freed
                // when its last pinning stream closes.
                tree = *new_tree;
                // storm-analyzer: allow(A4): one re-freeze per epoch install — a control-path event, not per-draw work
                frozen = Arc::new(tree.freeze());
            }
            ShardCmd::Close { session } => {
                streams.remove(&session);
            }
            ShardCmd::CloseMany(sessions) => {
                for session in sessions {
                    streams.remove(&session);
                }
            }
            ShardCmd::Open(args) => {
                let op = open_ops;
                open_ops += 1;
                open_stream(&frozen, shard, op, *args, &mut streams);
            }
            ShardCmd::OpenMany(args) => {
                let next_op = serve_open_many(&frozen, shard, open_ops, *args, &mut streams);
                open_ops = next_op;
            }
            ShardCmd::Fill { session, n, seq } => {
                // A fill for an unknown session is a straggler for a
                // stream already closed; with no reply channel left there
                // is nobody to tell, and nobody waiting.
                let Some(entry) = streams.get_mut(&session) else {
                    continue;
                };
                let reply = match fill_stream(shard, n, seq, entry) {
                    FillOutcome::Served(items) => Some(ShardReply::Batch {
                        shard,
                        items,
                        seq,
                        session,
                    }),
                    FillOutcome::DroppedReply => None,
                    FillOutcome::Poisoned => Some(ShardReply::Aborted { shard, session }),
                };
                // storm-analyzer: allow(A5): one reply per served Fill — a whole batch (or terminal Abort) per message, never per item
                let coordinator_gone = reply.is_some_and(|r| entry.reply.send(r).is_err());
                if coordinator_gone {
                    streams.remove(&session);
                }
            }
            ShardCmd::FillMany(reqs) => serve_fill_many(shard, &reqs, &mut streams),
        }
    }
}

/// Opens one stream (count + table insert) on the worker thread, over the
/// shard's frozen index. An open that panics leaves a poisoned entry so
/// the stream's later fills abort promptly; an open whose coordinator is
/// already gone leaves nothing.
fn open_stream(
    frozen: &Arc<crate::FrozenRsTree<2>>,
    shard: usize,
    op: u64,
    args: OpenArgs,
    streams: &mut HashMap<u64, StreamEntry>,
) {
    let OpenArgs {
        query,
        mode,
        seed,
        session,
        hook,
        recover,
        reply,
    } = args;
    let built = catch_unwind(AssertUnwindSafe(|| {
        let mut drop_reply = false;
        if let Some(hook) = &hook {
            match hook.fault(FaultSite::Open, shard, op) {
                Some(FaultKind::WorkerPanic) => {
                    panic!("storm-faultkit: injected worker panic (open, shard {shard}, op {op})")
                }
                Some(FaultKind::DelayReplyMs(ms)) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                Some(FaultKind::DropReply) => drop_reply = true,
                _ => {}
            }
        }
        // Count-only descent; the sampler is built lazily on first fill
        // (see [`StreamSlot`]). The descent visits exactly the nodes the
        // cone carve would, so this count equals the eager sampler's
        // `result_size`.
        let count = frozen.exact_count(&query);
        (count, drop_reply)
    }));
    match built {
        Ok((count, drop_reply)) => {
            let coordinator_alive = drop_reply
                || reply
                    .send(ShardReply::Opened {
                        shard,
                        count,
                        session,
                    })
                    .is_ok();
            // A zero-count stream can never be filled (its weight is 0 in
            // every coordinator), so don't table it at all: the close
            // becomes a no-op remove and the session costs this shard
            // nothing beyond the count descent.
            if coordinator_alive && count > 0 {
                streams.insert(
                    session,
                    StreamEntry {
                        reply,
                        slot: StreamSlot::Lazy {
                            frozen: Arc::clone(frozen),
                            query,
                            mode,
                            seed,
                            hook,
                            recover,
                        },
                    },
                );
            }
        }
        Err(_) => {
            // Contained: the stream is stillborn, the tree is fine. Keep a
            // poisoned entry so fills sent before the coordinator learns
            // of the abort are answered instead of timing out.
            let _ = reply.send(ShardReply::Aborted { shard, session });
            streams.insert(
                session,
                StreamEntry {
                    reply,
                    slot: StreamSlot::Poisoned,
                },
            );
        }
    }
}

/// Serves one coalesced [`ShardCmd::OpenMany`]: every named session's
/// stream is opened (count + table insert) in admission order, answered
/// with one [`ShardReply::Opens`] on the batch's shared channel. Panic
/// containment is per session — a stillborn open rides along as
/// `count: None` and the rest of the batch opens normally. An injected
/// `DropReply` omits that session from the reply (the stream itself still
/// opens; the coordinator writes the shard off). Returns the advanced
/// open-op counter.
fn serve_open_many(
    frozen: &Arc<crate::FrozenRsTree<2>>,
    shard: usize,
    mut open_ops: u64,
    args: OpenManyArgs,
    streams: &mut HashMap<u64, StreamEntry>,
) -> u64 {
    let OpenManyArgs {
        reqs,
        hook,
        recover,
        reply,
    } = args;
    let mut opens = Vec::with_capacity(reqs.len());
    for spec in reqs {
        let op = open_ops;
        open_ops += 1;
        let OpenSpec {
            session,
            query,
            mode,
            seed,
        } = spec;
        let built = catch_unwind(AssertUnwindSafe(|| {
            let mut drop_reply = false;
            if let Some(hook) = &hook {
                match hook.fault(FaultSite::Open, shard, op) {
                    Some(FaultKind::WorkerPanic) => {
                        panic!(
                            "storm-faultkit: injected worker panic (open, shard {shard}, op {op})"
                        )
                    }
                    Some(FaultKind::DelayReplyMs(ms)) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    Some(FaultKind::DropReply) => drop_reply = true,
                    _ => {}
                }
            }
            // Count-only descent; the sampler is built lazily on first
            // fill (see [`StreamSlot`]). A shard this query never touches
            // therefore never pays a sampler build.
            let count = frozen.exact_count(&query);
            (count, drop_reply)
        }));
        match built {
            Ok((count, drop_reply)) => {
                // Zero-count streams are never filled; skip the table
                // insert entirely (see `open_stream`).
                if count > 0 {
                    streams.insert(
                        session,
                        StreamEntry {
                            // storm-analyzer: allow(A4): admission path — one Arc bump per opened session, not per draw
                            reply: reply.clone(),
                            slot: StreamSlot::Lazy {
                                frozen: Arc::clone(frozen),
                                query,
                                mode,
                                seed,
                                // storm-analyzer: allow(A4): admission path — one hook Arc bump per opened session, not per draw
                                hook: hook.clone(),
                                recover,
                            },
                        },
                    );
                }
                if !drop_reply {
                    opens.push(SessionOpen {
                        session,
                        count: Some(count),
                    });
                }
            }
            Err(_) => {
                // Contained: this stream is stillborn, the batch and the
                // tree are fine. Keep a poisoned entry so straggler fills
                // are answered instead of timing out.
                streams.insert(
                    session,
                    StreamEntry {
                        // storm-analyzer: allow(A4): stillborn-stream bookkeeping — once per failed open, not per draw
                        reply: reply.clone(),
                        slot: StreamSlot::Poisoned,
                    },
                );
                opens.push(SessionOpen {
                    session,
                    count: None,
                });
            }
        }
    }
    let _ = reply.send(ShardReply::Opens { shard, opens });
    open_ops
}

/// Serves one fill against one table entry, containing panics by
/// poisoning the entry. A first fill against a [`StreamSlot::Lazy`] entry
/// materialises the sampler here (a panic during the build poisons the
/// entry, same as a panic mid-fill) — from the snapshot `Arc` the entry
/// pinned at open, never the worker's current one, so an epoch swap
/// between open and first fill is invisible to the stream.
fn fill_stream(shard: usize, n: usize, seq: u64, entry: &mut StreamEntry) -> FillOutcome {
    if let StreamSlot::Lazy {
        frozen,
        query,
        mode,
        seed,
        hook,
        recover,
    } = &entry.slot
    {
        let (query, mode, seed, recover) = (*query, *mode, *seed, *recover);
        let hook = hook.clone();
        let frozen = Arc::clone(frozen);
        let built = catch_unwind(AssertUnwindSafe(|| frozen.sampler(&query, mode)));
        match built {
            Ok(sampler) => {
                entry.slot = StreamSlot::Ready(Box::new(StreamState {
                    sampler,
                    rng: StdRng::seed_from_u64(seed),
                    hook,
                    recover,
                    fill_ops: 0,
                    cache: None,
                }));
            }
            Err(_) => {
                entry.slot = StreamSlot::Poisoned;
                return FillOutcome::Poisoned;
            }
        }
    }
    let StreamSlot::Ready(state) = &mut entry.slot else {
        return FillOutcome::Poisoned;
    };
    let op = state.fill_ops;
    state.fill_ops += 1;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut drop_reply = false;
        if let Some(hook) = &state.hook {
            match hook.fault(FaultSite::Fill, shard, op) {
                Some(FaultKind::WorkerPanic) => {
                    panic!("storm-faultkit: injected worker panic (fill, shard {shard}, op {op})")
                }
                Some(FaultKind::DelayReplyMs(ms)) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                Some(FaultKind::DropReply) => drop_reply = true,
                _ => {}
            }
        }
        let items = match &state.cache {
            Some((cached_seq, cached)) if *cached_seq == seq => cached.clone(),
            _ => {
                let mut batch = Vec::with_capacity(n);
                state.sampler.next_batch(&mut state.rng, &mut batch, n);
                if state.recover {
                    state.cache = Some((seq, batch.clone()));
                }
                batch
            }
        };
        if drop_reply {
            FillOutcome::DroppedReply
        } else {
            FillOutcome::Served(items)
        }
    }));
    match outcome {
        Ok(o) => o,
        Err(_) => {
            entry.slot = StreamSlot::Poisoned;
            FillOutcome::Poisoned
        }
    }
}

/// Serves one coalesced [`ShardCmd::FillMany`]: every named session's fill
/// in request order, answered with one [`ShardReply::Batches`] on the
/// first named stream's reply channel (the scheduler invariant: all
/// sessions in one `FillMany` share a channel).
fn serve_fill_many(shard: usize, reqs: &[FillReq], streams: &mut HashMap<u64, StreamEntry>) {
    let mut replies = Vec::with_capacity(reqs.len());
    let mut reply_to: Option<Sender<ShardReply>> = None;
    for r in reqs {
        // Unknown sessions (straggler fills past a close) are skipped; the
        // scheduler never fills a session it has closed, so in practice
        // every request finds its entry.
        let Some(entry) = streams.get_mut(&r.session) else {
            continue;
        };
        if reply_to.is_none() {
            // storm-analyzer: allow(A4): one Arc bump per FillMany round (first request only), amortised across the batch
            reply_to = Some(entry.reply.clone());
        }
        match fill_stream(shard, r.n, r.seq, entry) {
            FillOutcome::Served(items) => replies.push(SessionBatch {
                session: r.session,
                seq: r.seq,
                items: Some(items),
            }),
            FillOutcome::DroppedReply => {}
            FillOutcome::Poisoned => replies.push(SessionBatch {
                session: r.session,
                seq: r.seq,
                items: None,
            }),
        }
    }
    if let Some(tx) = reply_to {
        let _ = tx.send(ShardReply::Batches { shard, replies });
    }
}

/// A [`DistributedRsTree`] whose shards run on their own worker threads.
///
/// Build one with [`DistributedRsTree::into_parallel`]; recover the plain
/// cluster (for updates or sequential use) with
/// [`ParallelRsCluster::join`]. Streams opened by
/// [`ParallelRsCluster::sampler`] produce the same distribution as the
/// sequential [`DistributedRsTree::sampler`], and are deterministic under a
/// fixed seed (see the module docs). Any number of streams may be open
/// concurrently — `sampler` takes `&self`, per-query state lives in the
/// [`ParallelSampler`], and the workers multiplex their session tables.
///
/// By default the cluster runs the zero-overhead fail-soft path. Installing
/// a [`FaultHook`] ([`ParallelRsCluster::set_fault_hook`]) or a
/// [`RetryPolicy`] ([`ParallelRsCluster::set_retry_policy`]) activates the
/// timeout/retry recovery machinery described in the module docs.
///
/// ## Counter ordering policy
///
/// All atomic counters on the cluster (`dropped_sends`, `next_session`)
/// use `Ordering::Relaxed` for every load and RMW — they are monotonic
/// statistics/allocators that publish no other memory. Do not mix in
/// stronger orderings: a reader must never infer cross-thread
/// happens-before from these values.
#[derive(Debug)]
pub struct ParallelRsCluster {
    workers: Vec<WorkerHandle>,
    boundaries: Vec<u64>,
    curve: HilbertCurve,
    bounds: Rect2,
    /// Fault-injection hook handed to workers per stream.
    fault_hook: Option<Arc<dyn FaultHook>>,
    /// Explicit retry policy; `None` means recovery is off unless a hook
    /// is installed (in which case the default policy applies).
    retry: Option<RetryPolicy>,
    /// Next stream session id (Relaxed; see the ordering policy above).
    next_session: AtomicU64,
    /// Count of control sends that found a dead worker (see
    /// [`ParallelRsCluster::dropped_sends`]).
    dropped_sends: Arc<AtomicU64>,
    /// Count of epoch installs (Relaxed; a statistic, not a fence — the
    /// real handoff ordering is the per-worker channel FIFO).
    epoch: AtomicU64,
}

impl ParallelRsCluster {
    /// Moves every shard of `d` into its own worker thread.
    pub fn from_distributed(d: DistributedRsTree) -> Self {
        let (shards, boundaries, curve, bounds) = d.into_parts();
        let dropped_sends = Arc::new(AtomicU64::new(0));
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(s, tree)| {
                let (cmd_tx, cmd_rx) = unbounded();
                let len = tree.len();
                let thread = std::thread::spawn(move || run_shard(tree, s, &cmd_rx));
                WorkerHandle {
                    cmd: cmd_tx,
                    thread: Some(thread),
                    len: AtomicUsize::new(len),
                    shard: s,
                    dropped_sends: Arc::clone(&dropped_sends),
                }
            })
            .collect();
        ParallelRsCluster {
            workers,
            boundaries,
            curve,
            bounds,
            fault_hook: None,
            retry: None,
            next_session: AtomicU64::new(0),
            dropped_sends,
            epoch: AtomicU64::new(0),
        }
    }

    /// Installs a new data epoch: every shard worker's tree is replaced by
    /// the corresponding shard of `next` (one [`ShardCmd::Swap`] per
    /// worker, same shard count required) and subsequent opens snapshot
    /// the new data. Open sessions are never broken: each stream pinned
    /// its shard snapshots at open and keeps drawing from them until it
    /// closes, byte-identically to a run with no swap (the epoch-handoff
    /// determinism contract, certified by `tests/epoch_handoff.rs`).
    ///
    /// The cluster's routing metadata (curve boundaries) is kept from
    /// construction; build `next` with the same shard count and the swap
    /// is transparent to the open/fill protocol, which consults workers —
    /// not boundaries — for per-shard counts. Returns the new epoch
    /// number.
    ///
    /// # Panics
    /// Panics if `next` does not have exactly one shard per worker.
    pub fn install_epoch(&self, next: DistributedRsTree) -> u64 {
        let (shards, _boundaries, _curve, _bounds) = next.into_parts();
        assert_eq!(
            shards.len(),
            self.workers.len(),
            "epoch install requires one shard tree per worker"
        );
        for (w, tree) in self.workers.iter().zip(shards) {
            w.len.store(tree.len(), Ordering::Relaxed);
            // storm-analyzer: allow(A4): one boxed tree per shard per epoch install — a control-path event, not per-draw work
            let swap = ShardCmd::Swap(Box::new(tree));
            // storm-analyzer: allow(A5): each worker owns a private channel and a distinct tree — there is no batched form spanning workers, and installs happen once per epoch
            if w.cmd.send(swap).is_err() {
                w.note_dropped_send("epoch swap");
            }
        }
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// How many epochs have been installed (0 = still serving the build
    /// the cluster started with).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Total points across the cluster (as of the move; the parallel
    /// executor serves reads only).
    pub fn len(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.len.load(Ordering::Relaxed))
            .sum()
    }

    /// True when the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs a fault-injection hook: every subsequent stream hands it
    /// to the workers, and gathers switch to the timeout/retry path.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes the fault hook (recovery stays on if a retry policy is set).
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// Sets the timeout/retry policy and activates the recovery gather
    /// path even without a fault hook (for production fail-soft serving).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Whether gathers run the timeout/retry recovery path.
    fn recovery_active(&self) -> bool {
        self.fault_hook.is_some() || self.retry.is_some()
    }

    /// The effective retry policy.
    fn policy(&self) -> RetryPolicy {
        self.retry.unwrap_or_default()
    }

    /// How many control-plane sends (close/shutdown/open/fill) found a
    /// dead worker and were counted instead of silently dropped.
    pub fn dropped_sends(&self) -> u64 {
        self.dropped_sends.load(Ordering::Relaxed)
    }

    /// Allocates a cluster-unique stream session id.
    pub fn allocate_session(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Scatters `Open` for `session` to every shard, routing the stream's
    /// replies to `reply`. The caller gathers one
    /// [`ShardReply::Opened`]/[`ShardReply::Aborted`] per live shard (tagged
    /// with the shard index) itself — this is the scheduler-facing half of
    /// the protocol; single-query users should call
    /// [`ParallelRsCluster::sampler`] instead. Returns how many shards the
    /// open actually reached.
    pub fn open_session(
        &self,
        session: u64,
        query: Rect2,
        mode: SampleMode,
        seed: u64,
        reply: &Sender<ShardReply>,
    ) -> usize {
        let recover = self.recovery_active();
        let mut reached = 0;
        for (s, w) in self.workers.iter().enumerate() {
            let args = OpenArgs {
                query,
                mode,
                seed: shard_seed(seed, s),
                session,
                hook: self.fault_hook.clone(),
                recover,
                reply: reply.clone(),
            };
            let open = ShardCmd::Open(Box::new(args));
            // storm-analyzer: allow(A5): one Open control message per shard per session, not a per-item path
            if w.cmd.send(open).is_err() {
                w.note_dropped_send("open");
            } else {
                reached += 1;
            }
        }
        reached
    }

    /// Scatters one coalesced [`ShardCmd::OpenMany`] per live shard: the
    /// whole admission batch opens with `2 · shards` channel messages
    /// total instead of `2 · shards` *per session*. Per-shard stream
    /// seeds are derived exactly as [`ParallelRsCluster::open_session`]
    /// derives them, so coalesced and per-session opens produce identical
    /// streams. The caller gathers one [`ShardReply::Opens`] per reached
    /// shard (the returned count) on `reply`; every named session must
    /// route to that one channel (the scheduler invariant, as with
    /// [`ParallelRsCluster::fill_many`]).
    pub fn open_many(&self, reqs: &[OpenReq], reply: &Sender<ShardReply>) -> usize {
        let recover = self.recovery_active();
        let mut reached = 0;
        for (s, w) in self.workers.iter().enumerate() {
            let specs = reqs
                .iter()
                .map(|r| OpenSpec {
                    session: r.session,
                    query: r.query,
                    mode: r.mode,
                    seed: shard_seed(r.seed, s),
                })
                // storm-analyzer: allow(A4): admission flush — one spec Vec per shard per OpenMany, not per draw
                .collect();
            let args = OpenManyArgs {
                reqs: specs,
                // storm-analyzer: allow(A4): admission flush — one hook Arc bump per shard per OpenMany, not per draw
                hook: self.fault_hook.clone(),
                recover,
                // storm-analyzer: allow(A4): admission flush — one reply Arc bump per shard per OpenMany, not per draw
                reply: reply.clone(),
            };
            // storm-analyzer: allow(A4): admission flush — one boxed args block per shard per OpenMany, not per draw
            let cmd = ShardCmd::OpenMany(Box::new(args));
            // storm-analyzer: allow(A5): one OpenMany control message per shard carries the whole admission batch — the opposite of per-item traffic
            if w.cmd.send(cmd).is_err() {
                w.note_dropped_send("open-many");
            } else {
                reached += 1;
            }
        }
        reached
    }

    /// Sends one coalesced [`ShardCmd::FillMany`] to `shard`. Every named
    /// session must have been opened on this cluster with the *same* reply
    /// channel (the worker answers all of them in one
    /// [`ShardReply::Batches`] on the first named stream's channel).
    /// Returns `false` (and counts a dropped send) when the worker is gone.
    pub fn fill_many(&self, shard: usize, reqs: Vec<FillReq>) -> bool {
        let w = &self.workers[shard];
        if w.cmd.send(ShardCmd::FillMany(reqs)).is_err() {
            w.note_dropped_send("fill-many");
            false
        } else {
            true
        }
    }

    /// Tears down `session`'s stream on every shard (no replies). Returns
    /// the first unreachable shard as an error, after still notifying the
    /// rest.
    pub fn close_session(&self, session: u64) -> Result<(), CloseError> {
        let mut err = None;
        for w in &self.workers {
            if let Err(e) = w.close(session) {
                w.note_dropped_send("close");
                err.get_or_insert(e);
            }
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Tears down every named session's stream on every shard with one
    /// coalesced [`ShardCmd::CloseMany`] per shard (no replies) — the
    /// teardown analogue of [`ParallelRsCluster::open_many`]. Returns the
    /// first unreachable shard as an error, after still notifying the
    /// rest.
    pub fn close_many(&self, sessions: &[u64]) -> Result<(), CloseError> {
        let mut err = None;
        for w in &self.workers {
            // storm-analyzer: allow(A4): teardown flush — one session-list copy per shard per CloseMany, not per draw
            let cmd = ShardCmd::CloseMany(sessions.to_vec());
            // storm-analyzer: allow(A5): one CloseMany control message per shard carries every finished session since the last flush
            if w.cmd.send(cmd).is_err() {
                w.note_dropped_send("close-many");
                err.get_or_insert(CloseError { shard: w.shard });
            }
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Shuts the workers down and reassembles the sequential cluster,
    /// reporting — not re-raising — any shard trees lost to uncaught
    /// worker-thread panics.
    ///
    /// Stream-serving panics are contained inside the worker and can never
    /// lose a tree; a loss here means the worker loop itself died. Each
    /// lost shard's curve range is merged into its successor so routing
    /// stays total over the surviving shards.
    pub fn try_join(mut self) -> JoinOutcome {
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut lost_shards = Vec::new();
        let workers = std::mem::take(&mut self.workers);
        for mut w in workers {
            // storm-analyzer: allow(A5): one Shutdown control message per worker at teardown; runs once per cluster lifetime
            if w.cmd.send(ShardCmd::Shutdown).is_err() {
                w.note_dropped_send("shutdown");
            }
            let Some(thread) = w.thread.take() else {
                continue;
            };
            match thread.join() {
                Ok(tree) => shards.push(tree),
                Err(_) => {
                    eprintln!(
                        "storm-core: parallel: shard {} tree lost to worker panic; \
                         rebuilding cluster from survivors",
                        w.shard
                    );
                    lost_shards.push(w.shard);
                }
            }
        }
        // Drop the boundary that carved out each lost shard (descending so
        // earlier indices stay valid): shard i owned (b[i-1], b[i]], so
        // removing b[i] (or the last boundary for the last shard) merges
        // its range into a surviving neighbour.
        let mut boundaries = std::mem::take(&mut self.boundaries);
        for &s in lost_shards.iter().rev() {
            if boundaries.is_empty() {
                break;
            }
            let idx = s.min(boundaries.len() - 1);
            boundaries.remove(idx);
        }
        JoinOutcome {
            tree: DistributedRsTree::from_parts(shards, boundaries, self.curve, self.bounds),
            lost_shards,
        }
    }

    /// [`ParallelRsCluster::try_join`], discarding the loss report.
    pub fn join(self) -> DistributedRsTree {
        self.try_join().tree
    }

    /// Opens a parallel scatter-gather stream for `query`.
    ///
    /// `seed` derives each shard's stream RNG; together with the
    /// coordinator RNG handed to `next_batch`/`next_sample`, it fully
    /// determines the emitted sequence (neither thread scheduling nor
    /// concurrently open co-tenant streams can affect it). Takes `&self`:
    /// per-query state lives entirely in the returned sampler, whose
    /// replies travel over channels private to this stream.
    pub fn sampler(&self, query: Rect2, mode: SampleMode, seed: u64) -> ParallelSampler<'_> {
        let session = self.allocate_session();
        let recover = self.recovery_active();
        let policy = self.policy();
        let n = self.workers.len();
        // Scatter the open: every worker computes its partial count
        // concurrently. One fresh reply channel per shard keeps this
        // stream's gathers unmixed with any co-tenant's.
        let mut reply_txs = Vec::with_capacity(n);
        let mut replies = Vec::with_capacity(n);
        for (s, w) in self.workers.iter().enumerate() {
            let (tx, rx) = unbounded();
            let args = OpenArgs {
                query,
                mode,
                seed: shard_seed(seed, s),
                session,
                // storm-analyzer: allow(A4): one Arc bump per shard per query *open*, never per sample
                hook: self.fault_hook.clone(),
                recover,
                // storm-analyzer: allow(A4): one reply-Sender clone per shard per query open, never per sample
                reply: tx.clone(),
            };
            // storm-analyzer: allow(A4): one boxed Open per shard per query open, never per sample
            let open = ShardCmd::Open(Box::new(args));
            // storm-analyzer: allow(A5): one Open control message per shard per query, not a per-item path
            if w.cmd.send(open).is_err() {
                w.note_dropped_send("open");
            }
            reply_txs.push(tx);
            replies.push(rx);
        }
        // Gather the counts (per-shard stream channels: no ordering race).
        let mut weights = Vec::with_capacity(n);
        let mut open_failures = Vec::new();
        for (s, w) in self.workers.iter().enumerate() {
            let count = if recover {
                match gather_count(w, &replies[s], session, &policy, |attempt| {
                    // Open-phase retry: restart the stream (same seed →
                    // identical stream, nothing served yet).
                    let _ = attempt; // resend is identical per attempt
                    let args = OpenArgs {
                        query,
                        mode,
                        seed: shard_seed(seed, s),
                        session,
                        // storm-analyzer: allow(A4): one Arc bump per open *retry*, bounded by the retry policy
                        hook: self.fault_hook.clone(),
                        recover,
                        // storm-analyzer: allow(A4): one reply-Sender clone per open retry, bounded by the retry policy
                        reply: reply_txs[s].clone(),
                    };
                    // storm-analyzer: allow(A4): one boxed Open per open retry, bounded by the retry policy
                    w.cmd.send(ShardCmd::Open(Box::new(args))).is_ok() // storm-analyzer: allow(A5): one Open control message per retry, bounded by the retry policy
                }) {
                    Ok(c) => c,
                    Err(reason) => {
                        open_failures.push((s, reason));
                        0
                    }
                }
            } else {
                // storm-analyzer: allow(A5): one count reply per shard per query open; counts have no batched form
                // storm-analyzer: allow(A13): open ack from an in-process worker; a dead worker drops its reply Sender and this recv wakes with Err, handled as Disconnected below
                match replies[s].recv() {
                    Ok(ShardReply::Opened { count, .. }) => count,
                    // A worker whose stream died at open (contained panic)
                    // or disconnected contributes nothing.
                    Ok(ShardReply::Aborted { .. }) => {
                        open_failures.push((s, FailReason::OpenFailed));
                        0
                    }
                    Ok(
                        ShardReply::Batch { .. }
                        | ShardReply::Batches { .. }
                        | ShardReply::Opens { .. },
                    )
                    | Err(_) => {
                        open_failures.push((s, FailReason::Disconnected));
                        0
                    }
                }
            };
            weights.push(count as u64);
        }
        ParallelSampler {
            cluster: self,
            replies,
            core: StreamCore::new(mode, weights, open_failures),
            fills: vec![0; n],
            session,
            next_seq: 0,
        }
    }
}

/// Recovery-path count gather for one worker: timeout + bounded retry,
/// discarding replies that are not this session's count (this stream's
/// channel is private, but open retries can duplicate `Opened`s).
fn gather_count(
    w: &WorkerHandle,
    rx: &Receiver<ShardReply>,
    session: u64,
    policy: &RetryPolicy,
    mut resend: impl FnMut(u32) -> bool,
) -> Result<usize, FailReason> {
    let _ = w;
    let mut attempt = 0u32;
    loop {
        // storm-analyzer: allow(A5): open-retry loop — one count reply per attempt, bounded by the retry policy
        match rx.recv_timeout(policy.timeout_for(attempt)) {
            Ok(ShardReply::Opened {
                count,
                session: reply_session,
                ..
            }) if reply_session == session => return Ok(count),
            // A duplicate after an open retry, or (defensively) a message
            // tagged for another stream: discard and keep waiting.
            Ok(
                ShardReply::Opened { .. }
                | ShardReply::Batch { .. }
                | ShardReply::Batches { .. }
                | ShardReply::Opens { .. },
            ) => continue,
            Ok(ShardReply::Aborted {
                session: reply_session,
                ..
            }) => {
                if reply_session != session {
                    continue;
                }
                // The open itself panicked; a fresh open is a new fault
                // decision, so retrying is meaningful.
                attempt += 1;
                if attempt >= policy.attempts() || !resend(attempt) {
                    return Err(FailReason::OpenFailed);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                attempt += 1;
                if attempt >= policy.attempts() || !resend(attempt) {
                    return Err(FailReason::OpenFailed);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Err(FailReason::Disconnected),
        }
    }
}

/// Derives shard `s`'s stream-RNG seed from the query seed.
fn shard_seed(seed: u64, s: usize) -> u64 {
    mix64(
        seed ^ (s as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1),
    )
}

/// Fast-path request amplification: a contacted shard is asked for up to
/// this many rounds' worth of items instead of exactly this round's owed
/// count, and the surplus is banked coordinator-side. One channel
/// round-trip then serves ~this many rounds; on a single-CPU host (where
/// every message is a context switch) this is the difference between the
/// executor tracking the inline sampler and trailing it by an order of
/// magnitude (see E12 in results/BENCH_results.json).
const PREFETCH_AMPLIFY: usize = 32;

/// Upper bound on one amplified request, so a huge `next_batch` cannot ask
/// a worker to materialize an unbounded batch in one message.
const PREFETCH_MAX: usize = 1024;

/// The sans-I/O per-stream coordinator state machine: the multinomial
/// draw, prefetch request sizing, buffered-batch bookkeeping, drawn-order
/// merge, and degraded-mode write-off for **one** scatter-gather stream.
///
/// [`ParallelSampler`] drives one core with blocking per-shard channels;
/// the `storm-server` scheduler drives many cores over one shared reply
/// channel, coalescing their per-shard requests. Keeping the
/// round-planning arithmetic here — and nowhere else — is what pins the
/// multi-tenant determinism contract: every quantity a worker's batched
/// kernel can observe (which shard is asked, for how much, in which
/// round) is a pure function of this session-local state and the
/// session's own RNG, so a stream chunked under 1 000 co-tenants is
/// byte-identical to the same stream running alone. (The worker's WOR
/// kernel draws a part sequence *per fill*, so 64 + 64 ≠ 128: request
/// *sizes* must never depend on co-tenant load — schedulers may delay a
/// round, never resize it.)
///
/// The round protocol, in order: [`StreamCore::draw`] →
/// [`StreamCore::plan_requests`] → (caller I/O) →
/// [`StreamCore::deliver`]/[`StreamCore::fail`] per contacted shard →
/// [`StreamCore::merge_into`].
#[derive(Debug)]
pub struct StreamCore {
    mode: SampleMode,
    /// Initial per-shard result counts.
    weights: Vec<u64>,
    /// Unemitted counts (without-replacement bookkeeping).
    remaining: Vec<u64>,
    total_remaining: u64,
    total: usize,
    /// Scratch: the drawn shard sequence for the current round.
    seq: Vec<usize>,
    /// Scratch: per-shard owed counts for the current round.
    need: Vec<usize>,
    /// Per-shard gathered batches. Unlike the owed counts these persist
    /// *across* rounds: the planner over-requests ([`PREFETCH_AMPLIFY`])
    /// and the surplus waits here for later rounds, which is what keeps
    /// the per-round channel round-trip off the per-sample cost.
    batches: Vec<Vec<Item<2>>>,
    /// Per-shard merge cursors into `batches`.
    cursors: Vec<usize>,
    /// Items received from each shard over the stream's lifetime; with
    /// `weights` this bounds WOR prefetch to the mass the worker can
    /// still serve.
    fetched: Vec<u64>,
    /// Shards written off this stream, and the mass lost with them.
    degraded: DegradedInfo,
    /// Per-shard dead flags (never plan a request to a written-off shard).
    dead: Vec<bool>,
    /// Budget-aware prefetch cap: draws the stream still owes its caller
    /// after the current round (see [`StreamCore::set_fetch_hint`]).
    fetch_hint: Option<u64>,
}

impl StreamCore {
    /// Builds the state machine from the gathered per-shard counts, with
    /// open-phase failures already recorded (failed shards carry weight 0,
    /// so they are never drawn).
    pub fn new(mode: SampleMode, weights: Vec<u64>, failures: Vec<(usize, FailReason)>) -> Self {
        let total: u64 = weights.iter().sum();
        // Shards dead at open never reported a count, so their mass cannot
        // enter `initial_total`; they are recorded with zero lost mass and
        // the missing-mass bound under-counts accordingly (documented in
        // DESIGN.md §9).
        let mut degraded = DegradedInfo::new(total);
        for (s, reason) in failures {
            degraded.record(s, reason, 0);
        }
        let n = weights.len();
        StreamCore {
            mode,
            remaining: weights.clone(),
            weights,
            total_remaining: total,
            total: total as usize,
            seq: Vec::new(),
            need: vec![0; n],
            batches: vec![Vec::new(); n],
            cursors: vec![0; n],
            fetched: vec![0; n],
            degraded,
            dead: vec![false; n],
            fetch_hint: None,
        }
    }

    /// Declares how many draws the stream still owes its caller *after*
    /// the current round, capping request amplification so a short-budget
    /// stream does not prefetch [`PREFETCH_AMPLIFY`] rounds it will never
    /// consume. The cap is apportioned per shard by weight share (a
    /// shard is asked for this round's deficit plus its share of the
    /// future draws, plus one for rounding); under-apportionment only
    /// costs a later fill round, never correctness.
    ///
    /// Part of the deterministic protocol: the hint must be a pure
    /// function of session-local state (its sample budget and draws so
    /// far), exactly like the draw sizes — the `storm-server` scheduler
    /// sets it from the session's declared budget, which is why serving
    /// budgeted sessions fetches ~1x their budget while the budget-blind
    /// single-query [`ParallelSampler`] fetches the full amplification.
    pub fn set_fetch_hint(&mut self, remaining: u64) {
        self.fetch_hint = Some(remaining);
    }

    /// The sampling mode this stream was opened with.
    pub fn mode(&self) -> SampleMode {
        self.mode
    }

    /// Number of shards this stream spans.
    pub fn shards(&self) -> usize {
        self.need.len()
    }

    /// The exact result count gathered at open (`|P ∩ Q|`).
    pub fn result_count(&self) -> usize {
        self.total
    }

    /// Mass still drawable: WOR's unemitted count, or the live weight sum
    /// with replacement. Zero means [`StreamCore::draw`] will never again
    /// produce a round.
    pub fn live_mass(&self) -> u64 {
        match self.mode {
            SampleMode::WithoutReplacement => self.total_remaining,
            SampleMode::WithReplacement => self.weights.iter().sum(),
        }
    }

    /// This round's owed count for shard `s` (valid between
    /// [`StreamCore::draw`] and the next round's draw).
    pub fn owed(&self, s: usize) -> usize {
        self.need[s]
    }

    /// A snapshot of the stream's degraded-mode report.
    pub fn degraded_info(&self) -> DegradedInfo {
        self.degraded.clone()
    }

    /// True once any shard has been written off — a cheap check so
    /// per-round callers (the multi-session scheduler) only pay the
    /// [`StreamCore::degraded_info`] clone on streams that actually
    /// degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_degraded()
    }

    /// The fraction of the declared result mass lost to written-off
    /// shards (the estimator's missing-mass widening input), without
    /// cloning the report.
    pub fn missing_fraction(&self) -> f64 {
        self.degraded.missing_fraction()
    }

    /// Phase 1: draws up to `want` shard indices from the remaining-count
    /// multinomial into the round's owed tallies. Returns the number
    /// drawn; 0 means the stream is exhausted (or empty) and no round
    /// should run.
    pub fn draw(&mut self, rng: &mut dyn Rng, want: usize) -> usize {
        let rng = &mut *rng;
        self.seq.clear();
        self.need.fill(0);
        match self.mode {
            SampleMode::WithReplacement => {
                let total: u64 = self.weights.iter().sum();
                if total == 0 {
                    return 0;
                }
                for _ in 0..want {
                    let mut target = rng.random_range(0..total);
                    for (s, &w) in self.weights.iter().enumerate() {
                        if target < w {
                            self.need[s] += 1;
                            self.seq.push(s);
                            break;
                        }
                        target -= w;
                    }
                }
            }
            SampleMode::WithoutReplacement => {
                if self.total_remaining == 0 {
                    return 0;
                }
                for _ in 0..want {
                    if self.total_remaining == 0 {
                        break;
                    }
                    let mut target = rng.random_range(0..self.total_remaining);
                    for (s, &w) in self.remaining.iter().enumerate() {
                        if target < w {
                            self.remaining[s] -= 1;
                            self.total_remaining -= 1;
                            self.need[s] += 1;
                            self.seq.push(s);
                            break;
                        }
                        target -= w;
                    }
                }
            }
        }
        self.seq.len()
    }

    /// Phase 2 planning: computes this round's per-shard request sizes
    /// into `out` (index = shard, 0 = no I/O needed), compacting consumed
    /// buffer prefixes as it goes.
    ///
    /// Requests are *amplified*: instead of exactly this round's owed
    /// count, a shard is asked for up to [`PREFETCH_AMPLIFY`] rounds'
    /// worth and the surplus is banked in the buffer, so most rounds are
    /// served with no channel traffic at all. One subtlety makes this
    /// formula part of the deterministic protocol: the worker's batched
    /// WOR kernel draws a part sequence *per fill* and pops grouped per
    /// part, so a shard's item order depends on the fill sizes it receives
    /// (64 + 64 ≠ 128). Recovery rounds therefore use the *same* amplified
    /// formula as the fast path — a quiet-hooked run must chunk
    /// identically to an unhooked one — and every input here is
    /// session-local, so co-tenant load cannot perturb the sizes either.
    /// WOR prefetch is capped by the mass the worker can still serve so
    /// over-requesting can never masquerade as under-delivery.
    pub fn plan_requests(&mut self, out: &mut Vec<usize>) {
        out.clear();
        // Budget-aware cap (see `set_fetch_hint`): per shard, this round's
        // deficit plus the shard's weight share of the declared future
        // draws. `None` hint = no cap (the long-stream default).
        let hint = self.fetch_hint.map(|h| {
            let total: u64 = self.weights.iter().sum();
            (h, total.max(1))
        });
        for s in 0..self.need.len() {
            // Compact the consumed prefix so the buffer holds only
            // unemitted items and this round's merge cursor restarts at 0.
            if self.cursors[s] > 0 {
                self.batches[s].drain(..self.cursors[s]);
                self.cursors[s] = 0;
            }
            let need = self.need[s];
            let deficit = need.saturating_sub(self.batches[s].len());
            let req = if deficit == 0 {
                0
            } else {
                let mut amplified = deficit.max((need * PREFETCH_AMPLIFY).min(PREFETCH_MAX));
                if let Some((h, total)) = hint {
                    let share = (h * self.weights[s] / total) as usize + 1;
                    amplified = amplified.min(deficit + share);
                }
                match self.mode {
                    SampleMode::WithoutReplacement => {
                        let cap = self.weights[s].saturating_sub(self.fetched[s]) as usize;
                        amplified.min(cap)
                    }
                    SampleMode::WithReplacement => amplified,
                }
            };
            out.push(req);
        }
    }

    /// Banks one contacted shard's gathered batch for merging.
    pub fn deliver(&mut self, s: usize, items: Vec<Item<2>>) {
        self.fetched[s] += items.len() as u64;
        if self.batches[s].is_empty() {
            self.batches[s] = items;
        } else {
            self.batches[s].extend(items);
        }
    }

    /// Records that shard `s`'s gather failed this round and writes it out
    /// of the stream. Already-buffered items are still valid output and
    /// will be merged; only the part of this round's draw the buffer
    /// cannot cover is lost.
    pub fn fail(&mut self, s: usize, reason: FailReason) {
        let shortfall = self.need[s].saturating_sub(self.batches[s].len()) as u64;
        self.write_off(s, reason, shortfall);
    }

    /// Phase 3: merges the round's buffered items into `buf` in drawn
    /// order — deterministic regardless of which worker answered first —
    /// and (WOR) writes off under-delivering shards so the caller's retry
    /// loop re-draws their shortfall elsewhere instead of spinning.
    /// Returns the number of items merged.
    pub fn merge_into(&mut self, buf: &mut Vec<Item<2>>) -> usize {
        let before = buf.len();
        for i in 0..self.seq.len() {
            let s = self.seq[i];
            if self.cursors[s] < self.batches[s].len() {
                buf.push(self.batches[s][self.cursors[s]]);
                self.cursors[s] += 1;
            }
        }
        // Under-delivery (a shard's stream dried before its count): write
        // off the shortfall so phase 1 re-draws it from the survivors.
        if self.mode == SampleMode::WithoutReplacement {
            for s in 0..self.need.len() {
                let n = self.need[s];
                if n > 0 && !self.dead[s] && self.batches[s].len() < n {
                    let shortfall = (n - self.batches[s].len()) as u64;
                    self.write_off(s, FailReason::UnderDelivered, shortfall);
                }
            }
        }
        buf.len() - before
    }

    /// Writes shard `s` out of the stream: removes its mass from the draw
    /// weights and records the loss. `shortfall` is the current round's
    /// drawn-but-undelivered count — already subtracted from `remaining`
    /// in phase 1, so it must be added back into the reported loss.
    fn write_off(&mut self, s: usize, reason: FailReason, shortfall: u64) {
        if self.dead[s] {
            return;
        }
        self.dead[s] = true;
        let lost = match self.mode {
            SampleMode::WithoutReplacement => self.remaining[s] + shortfall,
            // With replacement nothing is "consumed"; the shard's whole
            // weight becomes unreachable.
            SampleMode::WithReplacement => self.weights[s],
        };
        self.total_remaining -= self.remaining[s];
        self.remaining[s] = 0;
        self.weights[s] = 0;
        self.degraded.record(s, reason, lost);
    }
}

/// The coordinator side of a parallel scatter-gather sample stream.
///
/// Implements [`SpatialSampler`]; `next_batch` is the intended entry point
/// (`next_sample` degenerates to blocks of one and pays a channel
/// round-trip per draw). [`SpatialSampler::degraded`] reports any shards
/// written off while the stream ran. Holds only a shared borrow of the
/// cluster: any number of samplers can stream concurrently, each over its
/// own private reply channels.
#[derive(Debug)]
pub struct ParallelSampler<'a> {
    cluster: &'a ParallelRsCluster,
    /// This stream's private per-shard reply channels.
    replies: Vec<Receiver<ShardReply>>,
    /// The sans-I/O round state machine.
    core: StreamCore,
    /// Scratch: per-shard request size actually sent this round (0 when
    /// the round was served entirely from the prefetch buffer).
    fills: Vec<usize>,
    /// This stream's identity; every protocol message echoes it.
    session: u64,
    /// Next scatter-round number (the retry/replay key).
    next_seq: u64,
}

impl ParallelSampler<'_> {
    /// Phase 2: scatter `Fill` requests per the planned sizes and gather
    /// the batches into the core. Returns `false` when every contacted
    /// shard is gone.
    fn scatter_gather(&mut self) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        let recover = self.cluster.recovery_active();
        let policy = self.cluster.policy();
        let session = self.session;
        let mut fills = std::mem::take(&mut self.fills);
        self.core.plan_requests(&mut fills);
        for (s, &req) in fills.iter().enumerate() {
            if req > 0
                && self.cluster.workers[s]
                    .cmd
                    // storm-analyzer: allow(A5): one Fill per shard per round requests a whole batch (and a prefetched surplus); items ride back in ShardReply::Batch
                    .send(ShardCmd::Fill {
                        session,
                        n: req,
                        seq,
                    })
                    .is_err()
            {
                self.cluster.workers[s].note_dropped_send("fill");
            }
        }
        let mut any = false;
        let mut failures: Vec<(usize, FailReason)> = Vec::new();
        for (s, &req) in fills.iter().enumerate() {
            if self.core.owed(s) > 0 && req == 0 {
                any = true; // served entirely from the prefetch buffer
            }
            if req == 0 {
                continue;
            }
            let gathered = if recover {
                gather_batch(&self.replies[s], seq, session, req, &policy, |n| {
                    self.cluster.workers[s]
                        .cmd
                        // storm-analyzer: allow(A5): one re-sent Fill per retry-policy timeout; it requests a whole batch
                        .send(ShardCmd::Fill { session, n, seq })
                        .is_ok()
                })
            } else {
                // storm-analyzer: allow(A5): one recv per in-flight Fill per round; the reply is a whole batch, most rounds have no traffic at all
                // storm-analyzer: allow(A13): fast-path gather with recovery off; worker death drops the reply Sender and wakes this recv with Err — the recovery branch above uses the recv_timeout gather instead
                match self.replies[s].recv() {
                    Ok(ShardReply::Batch { items, .. }) => Ok(items),
                    Ok(ShardReply::Aborted { .. }) => Err(FailReason::Aborted),
                    Ok(
                        ShardReply::Opened { .. }
                        | ShardReply::Batches { .. }
                        | ShardReply::Opens { .. },
                    )
                    | Err(_) => Err(FailReason::Disconnected),
                }
            };
            match gathered {
                Ok(items) => {
                    self.core.deliver(s, items);
                    any = true;
                }
                Err(reason) => failures.push((s, reason)),
            }
        }
        for (s, reason) in failures {
            self.core.fail(s, reason);
        }
        self.fills = fills;
        any
    }
}

/// Recovery-path batch gather for one shard: timeout + bounded retry with
/// the *same* `seq` (the worker replays its cache), discarding stale
/// replies.
fn gather_batch(
    rx: &Receiver<ShardReply>,
    seq: u64,
    session: u64,
    n: usize,
    policy: &RetryPolicy,
    mut resend: impl FnMut(usize) -> bool,
) -> Result<Vec<Item<2>>, FailReason> {
    let mut attempt = 0u32;
    loop {
        // storm-analyzer: allow(A5): recovery gather loop — one recv per retry attempt and the reply is a whole batch
        match rx.recv_timeout(policy.timeout_for(attempt)) {
            Ok(ShardReply::Batch {
                items,
                seq: reply_seq,
                session: reply_session,
                ..
            }) => {
                if reply_seq == seq && reply_session == session {
                    return Ok(items);
                }
                // A stale batch (earlier round, or a delayed duplicate the
                // retry already superseded): discard, keep waiting.
            }
            // A stale count reply (or defensively, a coalesced reply —
            // never sent on a single-stream channel): discard.
            Ok(
                ShardReply::Opened { .. } | ShardReply::Batches { .. } | ShardReply::Opens { .. },
            ) => {}
            Ok(ShardReply::Aborted {
                session: reply_session,
                ..
            }) => {
                if reply_session == session {
                    // The stream died worker-side; retrying cannot revive
                    // it (there is no stream left to serve the cache).
                    return Err(FailReason::Aborted);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                attempt += 1;
                if attempt >= policy.attempts() {
                    return Err(FailReason::Timeout);
                }
                // Same seq: a worker that already served this round will
                // replay its cache instead of advancing the stream.
                if !resend(n) {
                    return Err(FailReason::Disconnected);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Err(FailReason::Disconnected),
        }
    }
}

impl SpatialSampler<2> for ParallelSampler<'_> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<2>> {
        // A block of one: correct, but the channel round-trip per draw is
        // exactly what `next_batch` amortises away.
        let mut one = Vec::with_capacity(1);
        self.next_batch(rng, &mut one, 1);
        one.pop()
    }

    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<2>>, k: usize) -> usize {
        let rng = &mut *rng;
        let before = buf.len();
        if self.cluster.workers.is_empty() {
            return 0;
        }
        loop {
            let done = buf.len() - before;
            if done >= k {
                break;
            }
            // Phase 1: draw the shard sequence — the same per-draw
            // bookkeeping as the sequential gather, run as a block.
            let drawn = self.core.draw(rng, k - done);
            if drawn == 0 {
                break;
            }
            // Phase 2: scatter the planned requests, gather the batches. A
            // round where *every* contacted shard died delivers nothing,
            // but its mass is already written off — re-enter phase 1 and
            // re-draw from the survivors (phase 1 terminates the stream
            // itself once no mass remains; each all-dead round kills at
            // least one live shard, so this cannot loop unboundedly).
            if !self.scatter_gather() {
                continue;
            }
            // Phase 3: merge in drawn order.
            let merged = self.core.merge_into(buf);
            if self.core.mode() == SampleMode::WithReplacement && merged < drawn {
                // With replacement a full retry can only repeat the same
                // shortfall (weights are static); stop instead of looping.
                break;
            }
        }
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.core.result_count())
    }

    fn degraded(&self) -> Option<DegradedInfo> {
        Some(self.core.degraded_info())
    }
}

impl Drop for ParallelSampler<'_> {
    fn drop(&mut self) {
        // All gathers complete before next_batch returns, so there are no
        // in-flight replies; Close tears this session's worker streams
        // down (dead workers are counted by close_session itself).
        let _ = self.cluster.close_session(self.session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RsTreeConfig;
    use std::collections::HashSet;
    use storm_faultkit::FaultPlan;
    use storm_geo::Point2;

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    fn cluster(n: usize, shards: usize) -> ParallelRsCluster {
        DistributedRsTree::bulk_load(grid_items(n), shards, RsTreeConfig::with_fanout(16))
            .into_parallel()
    }

    #[test]
    fn parallel_wor_stream_is_exactly_the_query_result() {
        let c = cluster(5_000, 8);
        let q = Rect2::from_corners(Point2::xy(13.0, 7.0), Point2::xy(61.0, 29.0));
        let expected: HashSet<u64> = grid_items(5_000)
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .map(|it| it.id)
            .collect();
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 42);
        assert_eq!(s.result_size(), Some(expected.len()));
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 64) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate across shards: {}", item.id);
            }
        }
        assert!(
            s.degraded().is_some_and(|d| !d.is_degraded()),
            "clean run must not be degraded"
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn stream_is_deterministic_under_a_fixed_seed() {
        let q = Rect2::from_corners(Point2::xy(5.0, 2.0), Point2::xy(70.0, 40.0));
        let run = |batch: usize| -> Vec<u64> {
            let c = cluster(4_000, 8);
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, 7);
            let mut rng = StdRng::seed_from_u64(9);
            let mut out = Vec::new();
            let mut buf = Vec::new();
            while out.len() < 512 {
                buf.clear();
                if s.next_batch(&mut rng, &mut buf, batch) == 0 {
                    break;
                }
                out.extend(buf.iter().map(|it| it.id));
            }
            drop(s);
            c.join();
            out
        };
        // Same seeds, different runs: identical sequences despite thread
        // scheduling differences.
        assert_eq!(run(64), run(64));
    }

    #[test]
    fn concurrent_sessions_cannot_perturb_each_other() {
        // The multi-tenant determinism contract at the executor level: a
        // stream's emitted sequence is identical whether it runs alone or
        // interleaved round-for-round with co-tenant streams over the
        // same workers.
        let q = Rect2::from_corners(Point2::xy(5.0, 2.0), Point2::xy(70.0, 40.0));
        let solo = {
            let c = cluster(4_000, 4);
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, 7);
            let mut rng = StdRng::seed_from_u64(9);
            let mut buf = Vec::new();
            for _ in 0..6 {
                s.next_batch(&mut rng, &mut buf, 48);
            }
            buf.iter().map(|it| it.id).collect::<Vec<_>>()
        };
        let shared = {
            let c = cluster(4_000, 4);
            // Same stream plus 7 co-tenants with different seeds, all
            // open at once and filled in interleaved rounds.
            let mut target = c.sampler(q, SampleMode::WithoutReplacement, 7);
            let mut tenants: Vec<ParallelSampler<'_>> = (0..7)
                .map(|t| c.sampler(q, SampleMode::WithoutReplacement, 100 + t))
                .collect();
            let mut rng = StdRng::seed_from_u64(9);
            let mut tenant_rng = StdRng::seed_from_u64(1000);
            let mut buf = Vec::new();
            let mut scratch = Vec::new();
            for _ in 0..6 {
                target.next_batch(&mut rng, &mut buf, 48);
                for t in &mut tenants {
                    scratch.clear();
                    t.next_batch(&mut tenant_rng, &mut scratch, 32);
                }
            }
            buf.iter().map(|it| it.id).collect::<Vec<_>>()
        };
        assert_eq!(solo, shared);
    }

    #[test]
    fn join_round_trips_the_cluster() {
        let c = cluster(2_000, 4);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.len(), 2_000);
        assert_eq!(c.dropped_sends(), 0);
        let mut d = c.join();
        assert_eq!(d.num_shards(), 4);
        assert_eq!(d.len(), 2_000);
        // The reassembled cluster still samples correctly.
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(30.0, 10.0));
        let expected = d.exact_count(&q);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = d.sampler(q, SampleMode::WithoutReplacement);
        assert_eq!(s.draw(100_000, &mut rng).len(), expected);
    }

    #[test]
    fn with_replacement_batches_stream_indefinitely() {
        let c = cluster(1_000, 3);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(50.0, 9.0));
        let mut s = c.sampler(q, SampleMode::WithReplacement, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = Vec::new();
        for _ in 0..10 {
            buf.clear();
            assert_eq!(s.next_batch(&mut rng, &mut buf, 256), 256);
            for item in &buf {
                assert!(q.contains_point(&item.point));
            }
        }
    }

    #[test]
    fn empty_query_yields_empty_stream() {
        let c = cluster(500, 4);
        let q = Rect2::from_corners(Point2::xy(900.0, 900.0), Point2::xy(901.0, 901.0));
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 1);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(s.next_sample(&mut rng).is_none());
        assert_eq!(s.result_size(), Some(0));
    }

    #[test]
    fn sequential_and_parallel_agree_on_first_draw_distribution() {
        // Chi-square on the first parallel draw against uniform — the same
        // bar the sequential gather's test holds itself to.
        let items = grid_items(900);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 0.0)); // 100 pts
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = std::collections::HashMap::new();
        let c =
            DistributedRsTree::bulk_load(items, 6, RsTreeConfig::with_fanout(8)).into_parallel();
        for t in 0..trials {
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, t as u64);
            let Some(first) = s.next_sample(&mut rng) else {
                panic!("non-empty query produced no sample");
            };
            *counts.entry(first.id).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 100);
        let expected = trials as f64 / 100.0;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99 dof, p = 0.001 critical ≈ 148.2.
        assert!(chi < 148.2, "chi² = {chi}");
    }

    #[test]
    fn dropped_replies_recover_via_replay_without_duplicates() {
        // 20% dropped replies: every drop forces a timeout + retry, and
        // the worker's replay cache must hand back the *same* batch — the
        // stream stays an exact WOR enumeration, no loss, no duplicates.
        let mut c = cluster(2_000, 4);
        c.set_retry_policy(RetryPolicy {
            max_retries: 4,
            timeout_ms: 40,
            backoff: 2,
        });
        c.set_fault_hook(Arc::new(FaultPlan::seeded(21).with_drops(200)));
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(59.0, 19.0));
        let expected: HashSet<u64> = grid_items(2_000)
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .map(|it| it.id)
            .collect();
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 32) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate after replay: {}", item.id);
            }
        }
        // Drop probability per attempt is 20%; five attempts never all
        // drop under this seed, so no shard dies and nothing is lost.
        let d = s.degraded().unwrap_or_default();
        assert!(!d.is_degraded(), "unexpected write-offs: {d}");
        assert_eq!(got, expected);
    }

    #[test]
    fn worker_panics_degrade_the_stream_but_spare_the_cluster() {
        // Panic on every fill of shard-site decisions: the panicking
        // shards abort, the stream continues over the survivors, the
        // losses are reported, and join() still returns every tree.
        #[derive(Debug)]
        struct PanicShard0;
        impl FaultHook for PanicShard0 {
            fn fault(&self, site: FaultSite, shard: usize, _op: u64) -> Option<FaultKind> {
                (site == FaultSite::Fill && shard == 0).then_some(FaultKind::WorkerPanic)
            }
        }
        let mut c = cluster(3_000, 4);
        c.set_fault_hook(Arc::new(PanicShard0));
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 29.0));
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 11);
        let declared = s.result_size().unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 64) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate: {}", item.id);
            }
        }
        let d = s.degraded().expect("parallel streams always report");
        assert!(d.is_degraded(), "shard 0 should have been written off");
        assert_eq!(d.dead_shards(), vec![0]);
        assert_eq!(d.failures[0].reason, FailReason::Aborted);
        // Surviving samples + reported loss account for the whole result.
        assert_eq!(got.len() as u64 + d.lost_mass(), declared as u64);
        drop(s);
        // The panicked worker contained the unwind: its tree survives.
        let out = c.try_join();
        assert!(
            out.lost_shards.is_empty(),
            "tree lost: {:?}",
            out.lost_shards
        );
        assert_eq!(out.tree.len(), 3_000);
    }

    #[test]
    fn degraded_write_off_is_deterministic_across_runs() {
        // Same plan + seeds → byte-identical stream and identical
        // dead-shard reporting, three runs in a row.
        let run = || -> (Vec<u64>, Vec<usize>) {
            let mut c = cluster(2_000, 4);
            c.set_fault_hook(Arc::new(FaultPlan::seeded(77).with_panics(80)));
            let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(79.0, 19.0));
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, 13);
            let mut rng = StdRng::seed_from_u64(17);
            let mut out = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                if s.next_batch(&mut rng, &mut buf, 48) == 0 {
                    break;
                }
                out.extend(buf.iter().map(|it| it.id));
            }
            let dead = s.degraded().unwrap_or_default().dead_shards();
            (out, dead)
        };
        let a = run();
        let b = run();
        let c3 = run();
        assert_eq!(a, b);
        assert_eq!(b, c3);
    }

    #[test]
    fn close_on_live_worker_succeeds_and_counts_nothing() {
        let c = cluster(400, 2);
        // Closing a session no worker has heard of is a no-op the channel
        // still carries: live workers, nothing counted.
        assert_eq!(c.close_session(12345), Ok(()));
        assert_eq!(c.dropped_sends(), 0);
    }

    #[test]
    fn dropped_send_counter_is_exact_under_contention() {
        // The documented Relaxed-ordering policy in action: Relaxed RMWs
        // are still atomic, so hammering close_session on a shut-down
        // cluster from many threads must count every dropped send exactly
        // — no torn or lost increments, no ordering needed.
        let c = cluster(200, 2);
        // Kill the workers (join their threads) while keeping the handles.
        for w in &c.workers {
            w.cmd.send(ShardCmd::Shutdown).expect("worker still alive");
        }
        for w in &c.workers {
            // Safety valve: joining via the handle requires &mut; instead
            // wait until the channel reports disconnect.
            while w.cmd.send(ShardCmd::Close { session: 0 }).is_ok() {
                std::thread::yield_now();
            }
        }
        let before = c.dropped_sends();
        let threads = 8;
        let iters = 250;
        storm_testkit::stress_concurrent(threads, iters, |_, _| {
            let _ = c.close_session(7);
        });
        // Every close_session on a dead 2-shard cluster counts exactly 2.
        assert_eq!(
            c.dropped_sends() - before,
            (threads * iters * c.num_shards()) as u64
        );
    }
}
