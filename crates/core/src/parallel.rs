//! Parallel shard scatter-gather execution for the distributed RS-tree.
//!
//! [`crate::DistributedRsTree`] gathers its shards sequentially on the
//! caller's thread; this module is the production-shaped executor: every
//! shard's `RsTree` moves into its own long-lived worker thread, queries
//! are scattered as messages, and sample batches are gathered over
//! channels. The protocol mirrors the paper's cluster deployment — the
//! coordinator talks to shard servers, each of which does its own I/O.
//!
//! ## Protocol
//!
//! Per query the coordinator broadcasts [`ShardCmd::Open`] (query, mode,
//! a per-shard RNG seed, and a stream epoch) and collects each shard's
//! exact partial count. Each `next_batch(k)` call then runs three phases:
//!
//! 1. **draw** — the coordinator draws `k` shard indices from the
//!    remaining-count multinomial (the identical bookkeeping the sequential
//!    gather applies per draw, just run as a block);
//! 2. **scatter/gather** — each shard owing `n > 0` samples receives one
//!    [`ShardCmd::Fill`]`{n, seq, epoch}` and answers with a batch drawn by
//!    its local batched kernel ([`crate::SpatialSampler::next_batch`]);
//! 3. **merge** — replies are interleaved following the drawn index
//!    sequence, *not* arrival order.
//!
//! ## Why the distribution is unchanged
//!
//! Shards partition `P`, so the merged without-replacement stream needs no
//! deduplication; conditioned on the drawn shard sequence, each shard's
//! batch is a uniform WOR run of its remaining points, and re-interleaving
//! by the drawn sequence reproduces the sequential gather's joint
//! distribution exactly.
//!
//! ## Determinism under a fixed seed
//!
//! Merge order is a pure function of the coordinator's RNG (phase 1) and
//! each shard's batch is a pure function of that shard's seeded RNG, so the
//! emitted stream is identical across runs regardless of thread
//! scheduling. Only I/O-counter interleavings vary.
//!
//! ## Fault tolerance
//!
//! The executor is fail-soft, not fail-stop. Three mechanisms cooperate
//! (see `DESIGN.md` §9 for the full failure model):
//!
//! - **Panic containment** — the worker loop runs each stream under
//!   `catch_unwind`, so a panic (genuine or injected) poisons only the
//!   open stream, never the shard's tree: the worker answers
//!   [`ShardReply::Aborted`] and keeps serving subsequent queries, and
//!   [`ParallelRsCluster::join`] reassembles the cluster without
//!   `resume_unwind`.
//! - **Timeout + bounded retry** — when recovery is active (a
//!   [`FaultHook`] is installed or a [`RetryPolicy`] was set), gathers use
//!   `recv_timeout` with exponential backoff and re-send the *same*
//!   sequence number; workers cache the last served batch per stream and
//!   replay it on a duplicate `seq`, so a retried fill can never advance a
//!   without-replacement stream twice. With recovery inactive the gather
//!   path is the original blocking `recv` — zero overhead.
//! - **Graceful degradation** — a shard that exhausts its retries (or
//!   aborts, or disconnects) is written out of the query: its remaining
//!   mass is removed from the draw weights, the stream continues over the
//!   survivors, and the loss is recorded in a [`DegradedInfo`] surfaced
//!   through [`crate::SpatialSampler::degraded`] so the estimator layer
//!   can widen its confidence interval by the missing-mass bound.
//!
//! Fault injection itself lives in `storm-faultkit`: a [`FaultHook`] is a
//! pure function of `(site, shard, op)`, so an injected schedule of drops,
//! panics, and delays replays identically run over run — the fault-matrix
//! suite exercises exactly that.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use storm_faultkit::{DegradedInfo, FailReason, FaultHook, FaultKind, FaultSite, RetryPolicy};
use storm_geo::curve::HilbertCurve;
use storm_geo::Rect2;
use storm_rtree::Item;

use crate::rs_tree::RsTree;
use crate::{mix64, DistributedRsTree, SampleMode, SamplerKind, SpatialSampler};

/// Everything a worker needs to open one sampling stream.
struct OpenArgs {
    /// The range query.
    query: Rect2,
    /// With or without replacement.
    mode: SampleMode,
    /// Seed for the worker's stream-local RNG.
    seed: u64,
    /// Coordinator-assigned stream identity; every reply echoes it so
    /// stale messages from earlier streams are recognisable.
    epoch: u64,
    /// Fault-injection hook for this stream (test/chaos runs only).
    hook: Option<Arc<dyn FaultHook>>,
    /// Whether the coordinator may retry fills: enables the worker-side
    /// batch replay cache (skipped entirely on the fast path).
    recover: bool,
}

/// Coordinator → shard-worker messages.
enum ShardCmd {
    /// Open a sampling stream; the worker replies [`ShardReply::Opened`].
    /// Re-sending `Open` for the same epoch restarts the stream (identical
    /// seed → identical stream), which is how open-phase retries work.
    Open(Box<OpenArgs>),
    /// Draw up to `n` samples from the open stream; the worker replies
    /// [`ShardReply::Batch`] with the same `seq`/`epoch`. A repeated `seq`
    /// replays the cached batch instead of advancing the stream.
    Fill {
        /// Samples owed.
        n: usize,
        /// Scatter-round number within the stream.
        seq: u64,
        /// Stream identity (must match the open stream's).
        epoch: u64,
    },
    /// Tear down the open stream (no reply).
    Close,
    /// Exit the worker loop, returning the shard tree to the joiner.
    Shutdown,
}

/// Shard-worker → coordinator messages.
enum ShardReply {
    /// Stream opened; `count` is the shard's exact `|P_s ∩ Q|`.
    Opened {
        /// The shard's partial result count.
        count: usize,
        /// Echo of the opening epoch.
        epoch: u64,
    },
    /// Samples for one [`ShardCmd::Fill`] (possibly short when the shard's
    /// stream ended).
    Batch {
        /// The drawn (or replayed) samples.
        items: Vec<Item<2>>,
        /// Echo of the fill's scatter-round number.
        seq: u64,
        /// Echo of the stream epoch.
        epoch: u64,
    },
    /// The stream died to a contained panic (or a fill arrived with no
    /// stream open). The shard's tree survives for future queries, but
    /// this stream is over: the coordinator writes the shard off.
    Aborted {
        /// Epoch of the stream that died.
        epoch: u64,
    },
}

/// Typed error from [`ParallelRsCluster`] teardown paths: the shard's
/// command channel was already disconnected (its worker thread is gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloseError {
    /// Index of the unreachable shard.
    pub shard: usize,
}

impl std::fmt::Display for CloseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} worker unreachable (channel closed)",
            self.shard
        )
    }
}

impl std::error::Error for CloseError {}

/// Result of [`ParallelRsCluster::try_join`]: the reassembled sequential
/// cluster plus any shards whose trees were lost to uncaught worker-thread
/// panics (panics *inside* a stream are contained and never reach here).
#[derive(Debug)]
pub struct JoinOutcome {
    /// The cluster rebuilt from the surviving shards, with the lost
    /// shards' curve ranges merged into their successors.
    pub tree: DistributedRsTree,
    /// Indices (in pre-join numbering) of shards whose trees were lost.
    pub lost_shards: Vec<usize>,
}

/// One shard server: command/reply channels plus the thread owning the
/// shard's `RsTree`.
struct WorkerHandle {
    cmd: Sender<ShardCmd>,
    reply: Receiver<ShardReply>,
    thread: Option<JoinHandle<RsTree<2>>>,
    /// Points owned by this shard (recorded before the move).
    len: usize,
    /// This shard's index (for fault coordinates and error reporting).
    shard: usize,
    /// Cluster-wide count of control sends that found a dead worker.
    dropped_sends: Arc<AtomicU64>,
}

impl WorkerHandle {
    /// Sends `Close`, reporting (rather than swallowing) an unreachable
    /// worker.
    fn close(&self) -> Result<(), CloseError> {
        self.cmd
            .send(ShardCmd::Close)
            .map_err(|_| CloseError { shard: self.shard })
    }

    /// Log-and-count a control send that found the worker gone.
    fn note_dropped_send(&self, what: &str) {
        self.dropped_sends.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "storm-core: parallel: {what} to shard {} dropped (worker gone)",
            self.shard
        );
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if self.cmd.send(ShardCmd::Shutdown).is_err() {
            self.note_dropped_send("shutdown");
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle")
            .field("shard", &self.shard)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// How a stream's serving loop ended.
enum StreamExit {
    /// Coordinator went away or sent `Shutdown`: exit the worker.
    Shutdown,
    /// Stream closed normally; wait for the next command.
    Closed,
    /// A new `Open` arrived mid-stream (open-phase retry or back-to-back
    /// queries): drop this stream and open the next.
    Reopen(Box<OpenArgs>),
}

/// The worker loop: serve streams over the shard's own tree until
/// shutdown, then hand the tree back through the join handle.
///
/// Each stream runs under `catch_unwind`, so a panic while serving —
/// injected by a [`FaultHook`] or genuine — poisons only that stream. The
/// tree survives, the coordinator is told via [`ShardReply::Aborted`], and
/// the worker keeps serving subsequent queries.
fn run_shard(
    tree: RsTree<2>,
    shard: usize,
    cmd: &Receiver<ShardCmd>,
    reply: &Sender<ShardReply>,
) -> RsTree<2> {
    // Freeze once at worker start: every stream this worker serves runs
    // the read-optimized kernel (SoA arena + alias descents) instead of
    // walking the boxed tree. The boxed tree is kept intact purely as the
    // ingest-facing form handed back at join time.
    let frozen = Arc::new(tree.freeze());
    // Monotone count of streams opened on this worker: the op coordinate
    // for open-site fault decisions.
    let mut open_ops: u64 = 0;
    loop {
        // storm-analyzer: allow(A5): worker command loop — each recv is one control message (Open/Close/Shutdown); items never travel here
        let msg = match cmd.recv() {
            Ok(m) => m,
            Err(_) => return tree, // coordinator dropped: exit
        };
        let mut pending = match msg {
            ShardCmd::Shutdown => return tree,
            ShardCmd::Close => continue, // no stream open: noise
            ShardCmd::Fill { epoch, .. } => {
                // A fill with no stream open means our stream died (e.g. a
                // contained panic) while the coordinator still believed in
                // it. Tell it promptly instead of letting it time out.
                // storm-analyzer: allow(A5): one Aborted control message per dead-stream fill, not a per-item path
                if reply.send(ShardReply::Aborted { epoch }).is_err() {
                    return tree;
                }
                continue;
            }
            ShardCmd::Open(args) => Some(args),
        };
        while let Some(args) = pending.take() {
            let epoch = args.epoch;
            let op = open_ops;
            open_ops += 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                serve_query(&frozen, shard, op, &args, cmd, reply)
            }));
            match outcome {
                Ok(StreamExit::Shutdown) => return tree,
                Ok(StreamExit::Closed) => {}
                Ok(StreamExit::Reopen(next)) => pending = Some(next),
                Err(_) => {
                    // Contained: the stream is gone, the tree is fine.
                    // storm-analyzer: allow(A5): one Aborted control message per contained panic, not a per-item path
                    if reply.send(ShardReply::Aborted { epoch }).is_err() {
                        return tree;
                    }
                }
            }
        }
    }
}

/// Opens one stream (count + serve) on the worker thread, over the
/// shard's frozen index.
fn serve_query(
    tree: &Arc<crate::FrozenRsTree<2>>,
    shard: usize,
    op: u64,
    args: &OpenArgs,
    cmd: &Receiver<ShardCmd>,
    reply: &Sender<ShardReply>,
) -> StreamExit {
    let mut drop_reply = false;
    if let Some(hook) = &args.hook {
        match hook.fault(FaultSite::Open, shard, op) {
            Some(FaultKind::WorkerPanic) => {
                panic!("storm-faultkit: injected worker panic (open, shard {shard}, op {op})")
            }
            Some(FaultKind::DelayReplyMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(FaultKind::DropReply) => drop_reply = true,
            _ => {}
        }
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut sampler = tree.sampler(&args.query, args.mode);
    let count = sampler.result_size().unwrap_or(0);
    if !drop_reply
        && reply
            .send(ShardReply::Opened {
                count,
                epoch: args.epoch,
            })
            .is_err()
    {
        return StreamExit::Shutdown;
    }
    serve_stream(
        &mut sampler,
        &mut rng,
        shard,
        args.epoch,
        args.hook.as_deref(),
        args.recover,
        cmd,
        reply,
    )
}

/// Serves one open stream until it is closed, replaced, or the worker must
/// exit.
#[allow(clippy::too_many_arguments)]
fn serve_stream<S: SpatialSampler<2>>(
    sampler: &mut S,
    rng: &mut StdRng,
    shard: usize,
    epoch: u64,
    hook: Option<&dyn FaultHook>,
    recover: bool,
    cmd: &Receiver<ShardCmd>,
    reply: &Sender<ShardReply>,
) -> StreamExit {
    // Monotone count of fills *received* on this stream: the op coordinate
    // for fill-site fault decisions. A retried fill is a new op, so a
    // transient injected fault doesn't condemn every retry with it.
    let mut fill_ops: u64 = 0;
    // Replay cache: the last served scatter-round and its batch. A
    // duplicate seq means the coordinator never saw our reply and retried;
    // replaying the cache keeps the WOR stream exact (drawing afresh would
    // silently discard the cached samples). Only populated when the
    // coordinator can actually retry.
    let mut cache: Option<(u64, Vec<Item<2>>)> = None;
    loop {
        // storm-analyzer: allow(A5): stream server loop — one recv per Fill *round*; the whole batch rides back in one ShardReply::Batch
        match cmd.recv() {
            Err(_) | Ok(ShardCmd::Shutdown) => return StreamExit::Shutdown,
            Ok(ShardCmd::Close) => return StreamExit::Closed,
            Ok(ShardCmd::Open(args)) => return StreamExit::Reopen(args),
            Ok(ShardCmd::Fill {
                n,
                seq,
                epoch: fill_epoch,
            }) => {
                if fill_epoch != epoch {
                    // A straggler fill for a dead stream: tell the (old)
                    // coordinator view it aborted; harmless if ignored.
                    if reply
                        // storm-analyzer: allow(A5): one Aborted control message per straggler fill, not a per-item path
                        .send(ShardReply::Aborted { epoch: fill_epoch })
                        .is_err()
                    {
                        return StreamExit::Shutdown;
                    }
                    continue;
                }
                let op = fill_ops;
                fill_ops += 1;
                let mut drop_reply = false;
                if let Some(hook) = hook {
                    match hook.fault(FaultSite::Fill, shard, op) {
                        Some(FaultKind::WorkerPanic) => panic!(
                            "storm-faultkit: injected worker panic (fill, shard {shard}, op {op})"
                        ),
                        Some(FaultKind::DelayReplyMs(ms)) => {
                            std::thread::sleep(std::time::Duration::from_millis(ms));
                        }
                        Some(FaultKind::DropReply) => drop_reply = true,
                        _ => {}
                    }
                }
                let items = match &cache {
                    Some((cached_seq, cached)) if *cached_seq == seq => cached.clone(),
                    _ => {
                        let mut batch = Vec::with_capacity(n);
                        sampler.next_batch(rng, &mut batch, n);
                        if recover {
                            cache = Some((seq, batch.clone()));
                        }
                        batch
                    }
                };
                if !drop_reply && reply.send(ShardReply::Batch { items, seq, epoch }).is_err() {
                    return StreamExit::Shutdown;
                }
            }
        }
    }
}

/// A [`DistributedRsTree`] whose shards run on their own worker threads.
///
/// Build one with [`DistributedRsTree::into_parallel`]; recover the plain
/// cluster (for updates or sequential use) with
/// [`ParallelRsCluster::join`]. Streams opened by
/// [`ParallelRsCluster::sampler`] produce the same distribution as the
/// sequential [`DistributedRsTree::sampler`], and are deterministic under a
/// fixed seed (see the module docs).
///
/// By default the cluster runs the zero-overhead fail-soft path. Installing
/// a [`FaultHook`] ([`ParallelRsCluster::set_fault_hook`]) or a
/// [`RetryPolicy`] ([`ParallelRsCluster::set_retry_policy`]) activates the
/// timeout/retry recovery machinery described in the module docs.
#[derive(Debug)]
pub struct ParallelRsCluster {
    workers: Vec<WorkerHandle>,
    boundaries: Vec<u64>,
    curve: HilbertCurve,
    bounds: Rect2,
    /// Fault-injection hook handed to workers per stream.
    fault_hook: Option<Arc<dyn FaultHook>>,
    /// Explicit retry policy; `None` means recovery is off unless a hook
    /// is installed (in which case the default policy applies).
    retry: Option<RetryPolicy>,
    /// Next stream epoch.
    epoch: u64,
    /// Count of control sends that found a dead worker (see
    /// [`ParallelRsCluster::dropped_sends`]).
    dropped_sends: Arc<AtomicU64>,
}

impl ParallelRsCluster {
    /// Moves every shard of `d` into its own worker thread.
    pub fn from_distributed(d: DistributedRsTree) -> Self {
        let (shards, boundaries, curve, bounds) = d.into_parts();
        let dropped_sends = Arc::new(AtomicU64::new(0));
        let workers = shards
            .into_iter()
            .enumerate()
            .map(|(s, tree)| {
                let (cmd_tx, cmd_rx) = unbounded();
                let (rep_tx, rep_rx) = unbounded();
                let len = tree.len();
                let thread = std::thread::spawn(move || run_shard(tree, s, &cmd_rx, &rep_tx));
                WorkerHandle {
                    cmd: cmd_tx,
                    reply: rep_rx,
                    thread: Some(thread),
                    len,
                    shard: s,
                    dropped_sends: Arc::clone(&dropped_sends),
                }
            })
            .collect();
        ParallelRsCluster {
            workers,
            boundaries,
            curve,
            bounds,
            fault_hook: None,
            retry: None,
            epoch: 0,
            dropped_sends,
        }
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Total points across the cluster (as of the move; the parallel
    /// executor serves reads only).
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.len).sum()
    }

    /// True when the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs a fault-injection hook: every subsequent stream hands it
    /// to the workers, and gathers switch to the timeout/retry path.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Removes the fault hook (recovery stays on if a retry policy is set).
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// Sets the timeout/retry policy and activates the recovery gather
    /// path even without a fault hook (for production fail-soft serving).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Whether gathers run the timeout/retry recovery path.
    fn recovery_active(&self) -> bool {
        self.fault_hook.is_some() || self.retry.is_some()
    }

    /// The effective retry policy.
    fn policy(&self) -> RetryPolicy {
        self.retry.unwrap_or_default()
    }

    /// How many control-plane sends (close/shutdown/open) found a dead
    /// worker and were counted instead of silently dropped.
    pub fn dropped_sends(&self) -> u64 {
        self.dropped_sends.load(Ordering::Relaxed)
    }

    /// Shuts the workers down and reassembles the sequential cluster,
    /// reporting — not re-raising — any shard trees lost to uncaught
    /// worker-thread panics.
    ///
    /// Stream-serving panics are contained inside the worker and can never
    /// lose a tree; a loss here means the worker loop itself died. Each
    /// lost shard's curve range is merged into its successor so routing
    /// stays total over the surviving shards.
    pub fn try_join(mut self) -> JoinOutcome {
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut lost_shards = Vec::new();
        let workers = std::mem::take(&mut self.workers);
        for mut w in workers {
            // storm-analyzer: allow(A5): one Shutdown control message per worker at teardown; runs once per cluster lifetime
            if w.cmd.send(ShardCmd::Shutdown).is_err() {
                w.note_dropped_send("shutdown");
            }
            let Some(thread) = w.thread.take() else {
                continue;
            };
            match thread.join() {
                Ok(tree) => shards.push(tree),
                Err(_) => {
                    eprintln!(
                        "storm-core: parallel: shard {} tree lost to worker panic; \
                         rebuilding cluster from survivors",
                        w.shard
                    );
                    lost_shards.push(w.shard);
                }
            }
        }
        // Drop the boundary that carved out each lost shard (descending so
        // earlier indices stay valid): shard i owned (b[i-1], b[i]], so
        // removing b[i] (or the last boundary for the last shard) merges
        // its range into a surviving neighbour.
        let mut boundaries = std::mem::take(&mut self.boundaries);
        for &s in lost_shards.iter().rev() {
            if boundaries.is_empty() {
                break;
            }
            let idx = s.min(boundaries.len() - 1);
            boundaries.remove(idx);
        }
        JoinOutcome {
            tree: DistributedRsTree::from_parts(shards, boundaries, self.curve, self.bounds),
            lost_shards,
        }
    }

    /// [`ParallelRsCluster::try_join`], discarding the loss report.
    pub fn join(self) -> DistributedRsTree {
        self.try_join().tree
    }

    /// Opens a parallel scatter-gather stream for `query`.
    ///
    /// `seed` derives each shard's stream RNG; together with the
    /// coordinator RNG handed to `next_batch`/`next_sample`, it fully
    /// determines the emitted sequence (thread scheduling cannot affect
    /// it).
    pub fn sampler(&mut self, query: Rect2, mode: SampleMode, seed: u64) -> ParallelSampler<'_> {
        let epoch = self.epoch;
        self.epoch += 1;
        let recover = self.recovery_active();
        let policy = self.policy();
        // Scatter the open: every worker computes its partial count
        // concurrently.
        for (s, w) in self.workers.iter().enumerate() {
            let args = OpenArgs {
                query,
                mode,
                seed: shard_seed(seed, s),
                epoch,
                // storm-analyzer: allow(A4): one Arc bump per shard per query *open*, never per sample
                hook: self.fault_hook.clone(),
                recover,
            };
            // storm-analyzer: allow(A4): one boxed Open per shard per query open, never per sample
            let open = ShardCmd::Open(Box::new(args));
            // storm-analyzer: allow(A5): one Open control message per shard per query, not a per-item path
            if w.cmd.send(open).is_err() {
                w.note_dropped_send("open");
            }
        }
        // Gather the counts (per-worker reply channels: no ordering race).
        let mut weights = Vec::with_capacity(self.workers.len());
        let mut open_failures = Vec::new();
        for (s, w) in self.workers.iter().enumerate() {
            let count = if recover {
                match gather_count(w, epoch, &policy, |attempt| {
                    // Open-phase retry: restart the stream (same seed →
                    // identical stream, nothing served yet).
                    let _ = attempt; // resend is identical per attempt
                    let args = OpenArgs {
                        query,
                        mode,
                        seed: shard_seed(seed, s),
                        epoch,
                        // storm-analyzer: allow(A4): one Arc bump per open *retry*, bounded by the retry policy
                        hook: self.fault_hook.clone(),
                        recover,
                    };
                    // storm-analyzer: allow(A4): one boxed Open per open retry, bounded by the retry policy
                    w.cmd.send(ShardCmd::Open(Box::new(args))).is_ok() // storm-analyzer: allow(A5): one Open control message per retry, bounded by the retry policy
                }) {
                    Ok(c) => c,
                    Err(reason) => {
                        open_failures.push((s, reason));
                        0
                    }
                }
            } else {
                // storm-analyzer: allow(A5): one count reply per shard per query open; counts have no batched form
                match w.reply.recv() {
                    Ok(ShardReply::Opened { count, .. }) => count,
                    // A worker whose stream died at open (contained panic)
                    // or disconnected contributes nothing.
                    Ok(ShardReply::Aborted { .. }) => {
                        open_failures.push((s, FailReason::OpenFailed));
                        0
                    }
                    Ok(ShardReply::Batch { .. }) | Err(_) => {
                        open_failures.push((s, FailReason::Disconnected));
                        0
                    }
                }
            };
            weights.push(count as u64);
        }
        let total: u64 = weights.iter().sum();
        // Shards dead at open never reported a count, so their mass cannot
        // enter `initial_total`; they are recorded with zero lost mass and
        // the missing-mass bound under-counts accordingly (documented in
        // DESIGN.md §9).
        let mut degraded = DegradedInfo::new(total);
        for (s, reason) in open_failures {
            degraded.record(s, reason, 0);
        }
        let n = self.workers.len();
        ParallelSampler {
            cluster: self,
            mode,
            remaining: weights.clone(),
            weights,
            total_remaining: total,
            total: total as usize,
            seq: Vec::new(),
            need: vec![0; n],
            batches: vec![Vec::new(); n],
            cursors: vec![0; n],
            fills: vec![0; n],
            fetched: vec![0; n],
            epoch,
            next_seq: 0,
            degraded,
            dead: vec![false; n],
        }
    }
}

/// Recovery-path count gather for one worker: timeout + bounded retry,
/// discarding stale replies from earlier epochs.
fn gather_count(
    w: &WorkerHandle,
    epoch: u64,
    policy: &RetryPolicy,
    mut resend: impl FnMut(u32) -> bool,
) -> Result<usize, FailReason> {
    let mut attempt = 0u32;
    loop {
        // storm-analyzer: allow(A5): open-retry loop — one count reply per attempt, bounded by the retry policy
        match w.reply.recv_timeout(policy.timeout_for(attempt)) {
            Ok(ShardReply::Opened {
                count,
                epoch: reply_epoch,
            }) if reply_epoch == epoch => return Ok(count),
            // Stale reply from an earlier stream (or a duplicate after an
            // open retry): discard and keep waiting.
            Ok(ShardReply::Opened { .. } | ShardReply::Batch { .. }) => continue,
            Ok(ShardReply::Aborted { epoch: reply_epoch }) => {
                if reply_epoch != epoch {
                    continue;
                }
                // The open itself panicked; a fresh open is a new fault
                // decision, so retrying is meaningful.
                attempt += 1;
                if attempt >= policy.attempts() || !resend(attempt) {
                    return Err(FailReason::OpenFailed);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                attempt += 1;
                if attempt >= policy.attempts() || !resend(attempt) {
                    return Err(FailReason::OpenFailed);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Err(FailReason::Disconnected),
        }
    }
}

/// Derives shard `s`'s stream-RNG seed from the query seed.
fn shard_seed(seed: u64, s: usize) -> u64 {
    mix64(
        seed ^ (s as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1),
    )
}

/// Fast-path request amplification: a contacted shard is asked for up to
/// this many rounds' worth of items instead of exactly this round's owed
/// count, and the surplus is banked coordinator-side. One channel
/// round-trip then serves ~this many rounds; on a single-CPU host (where
/// every message is a context switch) this is the difference between the
/// executor tracking the inline sampler and trailing it by an order of
/// magnitude (see E12 in results/BENCH_results.json).
const PREFETCH_AMPLIFY: usize = 32;

/// Upper bound on one amplified request, so a huge `next_batch` cannot ask
/// a worker to materialize an unbounded batch in one message.
const PREFETCH_MAX: usize = 1024;

/// The coordinator side of a parallel scatter-gather sample stream.
///
/// Implements [`SpatialSampler`]; `next_batch` is the intended entry point
/// (`next_sample` degenerates to blocks of one and pays a channel
/// round-trip per draw). [`SpatialSampler::degraded`] reports any shards
/// written off while the stream ran.
#[derive(Debug)]
pub struct ParallelSampler<'a> {
    cluster: &'a mut ParallelRsCluster,
    mode: SampleMode,
    /// Initial per-shard result counts.
    weights: Vec<u64>,
    /// Unemitted counts (without-replacement bookkeeping).
    remaining: Vec<u64>,
    total_remaining: u64,
    total: usize,
    /// Scratch: the drawn shard sequence for the current block.
    seq: Vec<usize>,
    /// Scratch: per-shard owed counts for the current block.
    need: Vec<usize>,
    /// Scratch: per-shard gathered batches for the current block. Unlike
    /// the owed counts these persist *across* rounds: on the fast path the
    /// coordinator over-requests ([`PREFETCH_AMPLIFY`]) and the surplus
    /// waits here for later rounds, which is what keeps the per-round
    /// channel round-trip off the per-sample cost.
    batches: Vec<Vec<Item<2>>>,
    /// Scratch: per-shard merge cursors for the current block.
    cursors: Vec<usize>,
    /// Scratch: per-shard request size actually sent this round (0 when
    /// the round was served entirely from the prefetch buffer).
    fills: Vec<usize>,
    /// Items received from each shard over the stream's lifetime; with
    /// [`Self::weights`] this bounds WOR prefetch to the mass the worker
    /// can still serve.
    fetched: Vec<u64>,
    /// This stream's identity; every protocol message echoes it.
    epoch: u64,
    /// Next scatter-round number (the retry/replay key).
    next_seq: u64,
    /// Shards written off this stream, and the mass lost with them.
    degraded: DegradedInfo,
    /// Per-shard dead flags (never scatter to a written-off shard again).
    dead: Vec<bool>,
}

impl ParallelSampler<'_> {
    /// Writes shard `s` out of the stream: removes its mass from the draw
    /// weights and records the loss. `shortfall` is the current round's
    /// drawn-but-undelivered count — already subtracted from `remaining`
    /// in phase 1, so it must be added back into the reported loss.
    fn write_off(&mut self, s: usize, reason: FailReason, shortfall: u64) {
        if self.dead[s] {
            return;
        }
        self.dead[s] = true;
        let lost = match self.mode {
            SampleMode::WithoutReplacement => self.remaining[s] + shortfall,
            // With replacement nothing is "consumed"; the shard's whole
            // weight becomes unreachable.
            SampleMode::WithReplacement => self.weights[s],
        };
        self.total_remaining -= self.remaining[s];
        self.remaining[s] = 0;
        self.weights[s] = 0;
        self.degraded.record(s, reason, lost);
    }

    /// Phase 2: scatter `Fill` requests per the `need` tallies and gather
    /// the batches. Returns `false` when every contacted shard is gone.
    ///
    /// Requests are *amplified*: instead of asking each shard for exactly
    /// this round's owed count, the coordinator asks for up to
    /// [`PREFETCH_AMPLIFY`] rounds' worth and banks the surplus in
    /// `batches`, so most rounds are served from the buffer with no
    /// channel traffic at all. The coordinator-side draw interleaving is
    /// unchanged and phase 3 consumes buffered items in the order the
    /// per-round protocol would have delivered them. One subtlety makes
    /// the request-size formula part of the deterministic protocol: the
    /// worker's batched WOR kernel draws a part sequence *per fill* and
    /// pops grouped per part, so a shard's item order depends on the fill
    /// sizes it receives (64 + 64 ≠ 128). Recovery rounds therefore use
    /// the *same* amplified formula as the fast path — a quiet-hooked run
    /// must chunk identically to an unhooked one — and the worker's
    /// same-`seq` replay cache and `gather_batch`'s identical-`Fill`
    /// retries are size-agnostic, so replay semantics are unaffected. WOR
    /// prefetch is capped by the mass the worker can still serve so
    /// over-requesting can never masquerade as under-delivery.
    fn scatter_gather(&mut self) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        let recover = self.cluster.recovery_active();
        let policy = self.cluster.policy();
        let epoch = self.epoch;
        for s in 0..self.need.len() {
            // Compact the consumed prefix so the buffer holds only
            // unemitted items and this round's merge cursor restarts at 0.
            if self.cursors[s] > 0 {
                self.batches[s].drain(..self.cursors[s]);
                self.cursors[s] = 0;
            }
            let need = self.need[s];
            let deficit = need.saturating_sub(self.batches[s].len());
            let req = if deficit == 0 {
                0
            } else {
                let amplified = deficit.max((need * PREFETCH_AMPLIFY).min(PREFETCH_MAX));
                match self.mode {
                    SampleMode::WithoutReplacement => {
                        let cap = self.weights[s].saturating_sub(self.fetched[s]) as usize;
                        amplified.min(cap)
                    }
                    SampleMode::WithReplacement => amplified,
                }
            };
            self.fills[s] = req;
            if req > 0
                && self.cluster.workers[s]
                    .cmd
                    // storm-analyzer: allow(A5): one Fill per shard per round requests a whole batch (and a prefetched surplus); items ride back in ShardReply::Batch
                    .send(ShardCmd::Fill { n: req, seq, epoch })
                    .is_err()
            {
                self.cluster.workers[s].note_dropped_send("fill");
            }
        }
        let mut any = false;
        let mut failures: Vec<(usize, FailReason)> = Vec::new();
        for (s, &n) in self.need.iter().enumerate() {
            if n > 0 && self.fills[s] == 0 {
                any = true; // served entirely from the prefetch buffer
            }
            if self.fills[s] == 0 {
                continue;
            }
            let gathered = if recover {
                gather_batch(&self.cluster.workers[s], seq, epoch, self.fills[s], &policy)
            } else {
                // storm-analyzer: allow(A5): one recv per in-flight Fill per round; the reply is a whole batch, most rounds have no traffic at all
                match self.cluster.workers[s].reply.recv() {
                    Ok(ShardReply::Batch { items, .. }) => Ok(items),
                    Ok(ShardReply::Aborted { .. }) => Err(FailReason::Aborted),
                    Ok(ShardReply::Opened { .. }) | Err(_) => Err(FailReason::Disconnected),
                }
            };
            match gathered {
                Ok(items) => {
                    self.fetched[s] += items.len() as u64;
                    if self.batches[s].is_empty() {
                        self.batches[s] = items;
                    } else {
                        self.batches[s].extend(items);
                    }
                    any = true;
                }
                Err(reason) => failures.push((s, reason)),
            }
        }
        for (s, reason) in failures {
            // Already-buffered items are still valid stream output and will
            // be merged; only the part of this round's draw the buffer
            // cannot cover is lost.
            let shortfall = self.need[s].saturating_sub(self.batches[s].len()) as u64;
            self.write_off(s, reason, shortfall);
        }
        any
    }
}

/// Recovery-path batch gather for one shard: timeout + bounded retry with
/// the *same* `seq` (the worker replays its cache), discarding stale
/// replies.
fn gather_batch(
    w: &WorkerHandle,
    seq: u64,
    epoch: u64,
    n: usize,
    policy: &RetryPolicy,
) -> Result<Vec<Item<2>>, FailReason> {
    let mut attempt = 0u32;
    loop {
        // storm-analyzer: allow(A5): recovery gather loop — one recv per retry attempt and the reply is a whole batch
        match w.reply.recv_timeout(policy.timeout_for(attempt)) {
            Ok(ShardReply::Batch {
                items,
                seq: reply_seq,
                epoch: reply_epoch,
            }) => {
                if reply_seq == seq && reply_epoch == epoch {
                    return Ok(items);
                }
                // A stale batch (earlier round, or a delayed duplicate the
                // retry already superseded): discard, keep waiting.
            }
            // A stale count reply: discard.
            Ok(ShardReply::Opened { .. }) => {}
            Ok(ShardReply::Aborted { epoch: reply_epoch }) => {
                if reply_epoch == epoch {
                    // The stream died worker-side; retrying cannot revive
                    // it (there is no stream left to serve the cache).
                    return Err(FailReason::Aborted);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                attempt += 1;
                if attempt >= policy.attempts() {
                    return Err(FailReason::Timeout);
                }
                // Same seq: a worker that already served this round will
                // replay its cache instead of advancing the stream.
                // storm-analyzer: allow(A5): one re-sent Fill per timeout, bounded by the retry policy; it requests a whole batch
                if w.cmd.send(ShardCmd::Fill { n, seq, epoch }).is_err() {
                    return Err(FailReason::Disconnected);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Err(FailReason::Disconnected),
        }
    }
}

impl SpatialSampler<2> for ParallelSampler<'_> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<2>> {
        // A block of one: correct, but the channel round-trip per draw is
        // exactly what `next_batch` amortises away.
        let mut one = Vec::with_capacity(1);
        self.next_batch(rng, &mut one, 1);
        one.pop()
    }

    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<2>>, k: usize) -> usize {
        let rng = &mut *rng;
        let before = buf.len();
        if self.cluster.workers.is_empty() {
            return 0;
        }
        let mut seq = std::mem::take(&mut self.seq);
        loop {
            let done = buf.len() - before;
            if done >= k {
                break;
            }
            let want = k - done;
            seq.clear();
            self.need.fill(0);
            // Phase 1: draw the shard sequence — the same per-draw
            // bookkeeping as the sequential gather, run as a block.
            match self.mode {
                SampleMode::WithReplacement => {
                    let total: u64 = self.weights.iter().sum();
                    if total == 0 {
                        break;
                    }
                    for _ in 0..want {
                        let mut target = rng.random_range(0..total);
                        for (s, &w) in self.weights.iter().enumerate() {
                            if target < w {
                                self.need[s] += 1;
                                seq.push(s);
                                break;
                            }
                            target -= w;
                        }
                    }
                }
                SampleMode::WithoutReplacement => {
                    if self.total_remaining == 0 {
                        break;
                    }
                    for _ in 0..want {
                        if self.total_remaining == 0 {
                            break;
                        }
                        let mut target = rng.random_range(0..self.total_remaining);
                        for (s, &w) in self.remaining.iter().enumerate() {
                            if target < w {
                                self.remaining[s] -= 1;
                                self.total_remaining -= 1;
                                self.need[s] += 1;
                                seq.push(s);
                                break;
                            }
                            target -= w;
                        }
                    }
                }
            }
            if seq.is_empty() {
                break;
            }
            // Phase 2: scatter the owed counts, gather the batches. A
            // round where *every* contacted shard died delivers nothing,
            // but its mass is already written off — re-enter phase 1 and
            // re-draw from the survivors (phase 1 terminates the stream
            // itself once no mass remains; each all-dead round kills at
            // least one live shard, so this cannot loop unboundedly).
            if !self.scatter_gather() {
                continue;
            }
            // Phase 3: merge in drawn order — deterministic regardless of
            // which worker answered first.
            for &s in &seq {
                if self.cursors[s] < self.batches[s].len() {
                    buf.push(self.batches[s][self.cursors[s]]);
                    self.cursors[s] += 1;
                }
            }
            // Under-delivery (a shard's stream dried before its count):
            // write off the shortfall so the retry loop re-draws it
            // elsewhere instead of spinning.
            if self.mode == SampleMode::WithoutReplacement {
                for s in 0..self.need.len() {
                    let n = self.need[s];
                    if n > 0 && !self.dead[s] && self.batches[s].len() < n {
                        let shortfall = (n - self.batches[s].len()) as u64;
                        self.write_off(s, FailReason::UnderDelivered, shortfall);
                    }
                }
            } else if buf.len() - before < k {
                // With replacement a full retry can only repeat the same
                // shortfall (weights are static); stop instead of looping.
                break;
            }
        }
        self.seq = seq;
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.total)
    }

    fn degraded(&self) -> Option<DegradedInfo> {
        Some(self.degraded.clone())
    }
}

impl Drop for ParallelSampler<'_> {
    fn drop(&mut self) {
        // All gathers complete before next_batch returns, so there are no
        // in-flight replies; Close tears the worker streams down.
        for w in &self.cluster.workers {
            if w.close().is_err() {
                w.note_dropped_send("close");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RsTreeConfig;
    use std::collections::HashSet;
    use storm_faultkit::FaultPlan;
    use storm_geo::Point2;

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    fn cluster(n: usize, shards: usize) -> ParallelRsCluster {
        DistributedRsTree::bulk_load(grid_items(n), shards, RsTreeConfig::with_fanout(16))
            .into_parallel()
    }

    #[test]
    fn parallel_wor_stream_is_exactly_the_query_result() {
        let mut c = cluster(5_000, 8);
        let q = Rect2::from_corners(Point2::xy(13.0, 7.0), Point2::xy(61.0, 29.0));
        let expected: HashSet<u64> = grid_items(5_000)
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .map(|it| it.id)
            .collect();
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 42);
        assert_eq!(s.result_size(), Some(expected.len()));
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 64) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate across shards: {}", item.id);
            }
        }
        assert!(
            s.degraded().is_some_and(|d| !d.is_degraded()),
            "clean run must not be degraded"
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn stream_is_deterministic_under_a_fixed_seed() {
        let q = Rect2::from_corners(Point2::xy(5.0, 2.0), Point2::xy(70.0, 40.0));
        let run = |batch: usize| -> Vec<u64> {
            let mut c = cluster(4_000, 8);
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, 7);
            let mut rng = StdRng::seed_from_u64(9);
            let mut out = Vec::new();
            let mut buf = Vec::new();
            while out.len() < 512 {
                buf.clear();
                if s.next_batch(&mut rng, &mut buf, batch) == 0 {
                    break;
                }
                out.extend(buf.iter().map(|it| it.id));
            }
            drop(s);
            c.join();
            out
        };
        // Same seeds, different runs: identical sequences despite thread
        // scheduling differences.
        assert_eq!(run(64), run(64));
    }

    #[test]
    fn join_round_trips_the_cluster() {
        let c = cluster(2_000, 4);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.len(), 2_000);
        assert_eq!(c.dropped_sends(), 0);
        let mut d = c.join();
        assert_eq!(d.num_shards(), 4);
        assert_eq!(d.len(), 2_000);
        // The reassembled cluster still samples correctly.
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(30.0, 10.0));
        let expected = d.exact_count(&q);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = d.sampler(q, SampleMode::WithoutReplacement);
        assert_eq!(s.draw(100_000, &mut rng).len(), expected);
    }

    #[test]
    fn with_replacement_batches_stream_indefinitely() {
        let mut c = cluster(1_000, 3);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(50.0, 9.0));
        let mut s = c.sampler(q, SampleMode::WithReplacement, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = Vec::new();
        for _ in 0..10 {
            buf.clear();
            assert_eq!(s.next_batch(&mut rng, &mut buf, 256), 256);
            for item in &buf {
                assert!(q.contains_point(&item.point));
            }
        }
    }

    #[test]
    fn empty_query_yields_empty_stream() {
        let mut c = cluster(500, 4);
        let q = Rect2::from_corners(Point2::xy(900.0, 900.0), Point2::xy(901.0, 901.0));
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 1);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(s.next_sample(&mut rng).is_none());
        assert_eq!(s.result_size(), Some(0));
    }

    #[test]
    fn sequential_and_parallel_agree_on_first_draw_distribution() {
        // Chi-square on the first parallel draw against uniform — the same
        // bar the sequential gather's test holds itself to.
        let items = grid_items(900);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 0.0)); // 100 pts
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = std::collections::HashMap::new();
        let mut c =
            DistributedRsTree::bulk_load(items, 6, RsTreeConfig::with_fanout(8)).into_parallel();
        for t in 0..trials {
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, t as u64);
            let Some(first) = s.next_sample(&mut rng) else {
                panic!("non-empty query produced no sample");
            };
            *counts.entry(first.id).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 100);
        let expected = trials as f64 / 100.0;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99 dof, p = 0.001 critical ≈ 148.2.
        assert!(chi < 148.2, "chi² = {chi}");
    }

    #[test]
    fn dropped_replies_recover_via_replay_without_duplicates() {
        // 20% dropped replies: every drop forces a timeout + retry, and
        // the worker's replay cache must hand back the *same* batch — the
        // stream stays an exact WOR enumeration, no loss, no duplicates.
        let mut c = cluster(2_000, 4);
        c.set_retry_policy(RetryPolicy {
            max_retries: 4,
            timeout_ms: 40,
            backoff: 2,
        });
        c.set_fault_hook(Arc::new(FaultPlan::seeded(21).with_drops(200)));
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(59.0, 19.0));
        let expected: HashSet<u64> = grid_items(2_000)
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .map(|it| it.id)
            .collect();
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 32) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate after replay: {}", item.id);
            }
        }
        // Drop probability per attempt is 20%; five attempts never all
        // drop under this seed, so no shard dies and nothing is lost.
        let d = s.degraded().unwrap_or_default();
        assert!(!d.is_degraded(), "unexpected write-offs: {d}");
        assert_eq!(got, expected);
    }

    #[test]
    fn worker_panics_degrade_the_stream_but_spare_the_cluster() {
        // Panic on every fill of shard-site decisions: the panicking
        // shards abort, the stream continues over the survivors, the
        // losses are reported, and join() still returns every tree.
        #[derive(Debug)]
        struct PanicShard0;
        impl FaultHook for PanicShard0 {
            fn fault(&self, site: FaultSite, shard: usize, _op: u64) -> Option<FaultKind> {
                (site == FaultSite::Fill && shard == 0).then_some(FaultKind::WorkerPanic)
            }
        }
        let mut c = cluster(3_000, 4);
        c.set_fault_hook(Arc::new(PanicShard0));
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 29.0));
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 11);
        let declared = s.result_size().unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 64) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate: {}", item.id);
            }
        }
        let d = s.degraded().expect("parallel streams always report");
        assert!(d.is_degraded(), "shard 0 should have been written off");
        assert_eq!(d.dead_shards(), vec![0]);
        assert_eq!(d.failures[0].reason, FailReason::Aborted);
        // Surviving samples + reported loss account for the whole result.
        assert_eq!(got.len() as u64 + d.lost_mass(), declared as u64);
        drop(s);
        // The panicked worker contained the unwind: its tree survives.
        let out = c.try_join();
        assert!(
            out.lost_shards.is_empty(),
            "tree lost: {:?}",
            out.lost_shards
        );
        assert_eq!(out.tree.len(), 3_000);
    }

    #[test]
    fn degraded_write_off_is_deterministic_across_runs() {
        // Same plan + seeds → byte-identical stream and identical
        // dead-shard reporting, three runs in a row.
        let run = || -> (Vec<u64>, Vec<usize>) {
            let mut c = cluster(2_000, 4);
            c.set_fault_hook(Arc::new(FaultPlan::seeded(77).with_panics(80)));
            let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(79.0, 19.0));
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, 13);
            let mut rng = StdRng::seed_from_u64(17);
            let mut out = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                if s.next_batch(&mut rng, &mut buf, 48) == 0 {
                    break;
                }
                out.extend(buf.iter().map(|it| it.id));
            }
            let dead = s.degraded().unwrap_or_default().dead_shards();
            (out, dead)
        };
        let a = run();
        let b = run();
        let c3 = run();
        assert_eq!(a, b);
        assert_eq!(b, c3);
    }

    #[test]
    fn close_on_live_worker_succeeds_and_counts_nothing() {
        let c = cluster(400, 2);
        for w in &c.workers {
            assert_eq!(w.close(), Ok(()));
        }
        assert_eq!(c.dropped_sends(), 0);
    }
}
