//! Parallel shard scatter-gather execution for the distributed RS-tree.
//!
//! [`crate::DistributedRsTree`] gathers its shards sequentially on the
//! caller's thread; this module is the production-shaped executor: every
//! shard's `RsTree` moves into its own long-lived worker thread, queries
//! are scattered as messages, and sample batches are gathered over
//! channels. The protocol mirrors the paper's cluster deployment — the
//! coordinator talks to shard servers, each of which does its own I/O.
//!
//! ## Protocol
//!
//! Per query the coordinator broadcasts [`ShardCmd::Open`] (query, mode,
//! and a per-shard RNG seed) and collects each shard's exact partial count.
//! Each `next_batch(k)` call then runs three phases:
//!
//! 1. **draw** — the coordinator draws `k` shard indices from the
//!    remaining-count multinomial (the identical bookkeeping the sequential
//!    gather applies per draw, just run as a block);
//! 2. **scatter/gather** — each shard owing `n > 0` samples receives one
//!    [`ShardCmd::Fill`]`(n)` and answers with a batch drawn by its local
//!    batched kernel ([`crate::SpatialSampler::next_batch`]);
//! 3. **merge** — replies are interleaved following the drawn index
//!    sequence, *not* arrival order.
//!
//! ## Why the distribution is unchanged
//!
//! Shards partition `P`, so the merged without-replacement stream needs no
//! deduplication; conditioned on the drawn shard sequence, each shard's
//! batch is a uniform WOR run of its remaining points, and re-interleaving
//! by the drawn sequence reproduces the sequential gather's joint
//! distribution exactly.
//!
//! ## Determinism under a fixed seed
//!
//! Merge order is a pure function of the coordinator's RNG (phase 1) and
//! each shard's batch is a pure function of that shard's seeded RNG, so the
//! emitted stream is identical across runs regardless of thread
//! scheduling. Only I/O-counter interleavings vary.

use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use storm_geo::curve::HilbertCurve;
use storm_geo::Rect2;
use storm_rtree::Item;

use crate::rs_tree::RsTree;
use crate::{mix64, DistributedRsTree, SampleMode, SamplerKind, SpatialSampler};

/// Coordinator → shard-worker messages.
enum ShardCmd {
    /// Open a sampling stream; the worker replies [`ShardReply::Opened`].
    Open {
        /// The range query.
        query: Rect2,
        /// With or without replacement.
        mode: SampleMode,
        /// Seed for the worker's stream-local RNG.
        seed: u64,
    },
    /// Draw up to `n` samples from the open stream; the worker replies
    /// [`ShardReply::Batch`].
    Fill(usize),
    /// Tear down the open stream (no reply).
    Close,
    /// Exit the worker loop, returning the shard tree to the joiner.
    Shutdown,
}

/// Shard-worker → coordinator messages.
enum ShardReply {
    /// Stream opened; `count` is the shard's exact `|P_s ∩ Q|`.
    Opened {
        /// The shard's partial result count.
        count: usize,
    },
    /// Samples for the last [`ShardCmd::Fill`] (possibly short when the
    /// shard's stream ended).
    Batch(Vec<Item<2>>),
}

/// One shard server: command/reply channels plus the thread owning the
/// shard's `RsTree`.
struct WorkerHandle {
    cmd: Sender<ShardCmd>,
    reply: Receiver<ShardReply>,
    thread: Option<JoinHandle<RsTree<2>>>,
    /// Points owned by this shard (recorded before the move).
    len: usize,
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        let _ = self.cmd.send(ShardCmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// The worker loop: serve streams over the shard's own tree until
/// shutdown, then hand the tree back through the join handle.
fn run_shard(
    mut tree: RsTree<2>,
    cmd: &Receiver<ShardCmd>,
    reply: &Sender<ShardReply>,
) -> RsTree<2> {
    loop {
        let msg = match cmd.recv() {
            Ok(m) => m,
            Err(_) => return tree, // coordinator dropped: exit
        };
        match msg {
            ShardCmd::Shutdown => return tree,
            // No stream is open; Fill/Close here are protocol noise from a
            // coordinator that already gave up on us.
            ShardCmd::Fill(_) | ShardCmd::Close => continue,
            ShardCmd::Open { query, mode, seed } => {
                let shutdown = {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut sampler = tree.sampler(query, mode);
                    let count = sampler.result_size().unwrap_or(0);
                    if reply.send(ShardReply::Opened { count }).is_err() {
                        true
                    } else {
                        serve_stream(&mut sampler, &mut rng, cmd, reply)
                    }
                };
                if shutdown {
                    return tree;
                }
            }
        }
    }
}

/// Serves one open stream; returns `true` when the worker should exit.
fn serve_stream(
    sampler: &mut crate::RsSampler<'_, 2>,
    rng: &mut StdRng,
    cmd: &Receiver<ShardCmd>,
    reply: &Sender<ShardReply>,
) -> bool {
    loop {
        match cmd.recv() {
            Err(_) | Ok(ShardCmd::Shutdown) => return true,
            Ok(ShardCmd::Close) => return false,
            // A nested Open is protocol misuse; drop the current stream
            // (the coordinator never sends this).
            Ok(ShardCmd::Open { .. }) => return false,
            Ok(ShardCmd::Fill(n)) => {
                let mut batch = Vec::with_capacity(n);
                sampler.next_batch(rng, &mut batch, n);
                if reply.send(ShardReply::Batch(batch)).is_err() {
                    return true;
                }
            }
        }
    }
}

/// A [`DistributedRsTree`] whose shards run on their own worker threads.
///
/// Build one with [`DistributedRsTree::into_parallel`]; recover the plain
/// cluster (for updates or sequential use) with
/// [`ParallelRsCluster::join`]. Streams opened by
/// [`ParallelRsCluster::sampler`] produce the same distribution as the
/// sequential [`DistributedRsTree::sampler`], and are deterministic under a
/// fixed seed (see the module docs).
#[derive(Debug)]
pub struct ParallelRsCluster {
    workers: Vec<WorkerHandle>,
    boundaries: Vec<u64>,
    curve: HilbertCurve,
    bounds: Rect2,
}

impl ParallelRsCluster {
    /// Moves every shard of `d` into its own worker thread.
    pub fn from_distributed(d: DistributedRsTree) -> Self {
        let (shards, boundaries, curve, bounds) = d.into_parts();
        let workers = shards
            .into_iter()
            .map(|tree| {
                let (cmd_tx, cmd_rx) = unbounded();
                let (rep_tx, rep_rx) = unbounded();
                let len = tree.len();
                let thread = std::thread::spawn(move || run_shard(tree, &cmd_rx, &rep_tx));
                WorkerHandle {
                    cmd: cmd_tx,
                    reply: rep_rx,
                    thread: Some(thread),
                    len,
                }
            })
            .collect();
        ParallelRsCluster {
            workers,
            boundaries,
            curve,
            bounds,
        }
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Total points across the cluster (as of the move; the parallel
    /// executor serves reads only).
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.len).sum()
    }

    /// True when the cluster holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shuts the workers down and reassembles the sequential cluster.
    ///
    /// # Panics
    /// Panics when a worker thread itself panicked (its shard tree is
    /// unrecoverable, so the cluster cannot be reassembled).
    pub fn join(mut self) -> DistributedRsTree {
        let mut shards = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            let _ = w.cmd.send(ShardCmd::Shutdown);
            let Some(thread) = w.thread.take() else {
                continue;
            };
            match thread.join() {
                Ok(tree) => shards.push(tree),
                // A panicked shard loses its tree; re-raising the worker's
                // own panic is the only honest option.
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        self.workers.clear();
        DistributedRsTree::from_parts(
            shards,
            std::mem::take(&mut self.boundaries),
            self.curve,
            self.bounds,
        )
    }

    /// Opens a parallel scatter-gather stream for `query`.
    ///
    /// `seed` derives each shard's stream RNG; together with the
    /// coordinator RNG handed to `next_batch`/`next_sample`, it fully
    /// determines the emitted sequence (thread scheduling cannot affect
    /// it).
    pub fn sampler(&mut self, query: Rect2, mode: SampleMode, seed: u64) -> ParallelSampler<'_> {
        // Scatter the open: every worker computes its partial count
        // concurrently.
        for (s, w) in self.workers.iter().enumerate() {
            let _ = w.cmd.send(ShardCmd::Open {
                query,
                mode,
                seed: shard_seed(seed, s),
            });
        }
        // Gather the counts (per-worker reply channels: no ordering race).
        let mut weights = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let count = match w.reply.recv() {
                Ok(ShardReply::Opened { count }) => count,
                // A dead or confused worker contributes nothing.
                Ok(ShardReply::Batch(_)) | Err(_) => 0,
            };
            weights.push(count as u64);
        }
        let total: u64 = weights.iter().sum();
        let n = self.workers.len();
        ParallelSampler {
            cluster: self,
            mode,
            remaining: weights.clone(),
            weights,
            total_remaining: total,
            total: total as usize,
            seq: Vec::new(),
            need: vec![0; n],
            batches: vec![Vec::new(); n],
            cursors: vec![0; n],
        }
    }
}

/// Derives shard `s`'s stream-RNG seed from the query seed.
fn shard_seed(seed: u64, s: usize) -> u64 {
    mix64(
        seed ^ (s as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1),
    )
}

/// The coordinator side of a parallel scatter-gather sample stream.
///
/// Implements [`SpatialSampler`]; `next_batch` is the intended entry point
/// (`next_sample` degenerates to blocks of one and pays a channel
/// round-trip per draw).
#[derive(Debug)]
pub struct ParallelSampler<'a> {
    cluster: &'a mut ParallelRsCluster,
    mode: SampleMode,
    /// Initial per-shard result counts.
    weights: Vec<u64>,
    /// Unemitted counts (without-replacement bookkeeping).
    remaining: Vec<u64>,
    total_remaining: u64,
    total: usize,
    /// Scratch: the drawn shard sequence for the current block.
    seq: Vec<usize>,
    /// Scratch: per-shard owed counts for the current block.
    need: Vec<usize>,
    /// Scratch: per-shard gathered batches for the current block.
    batches: Vec<Vec<Item<2>>>,
    /// Scratch: per-shard merge cursors for the current block.
    cursors: Vec<usize>,
}

impl ParallelSampler<'_> {
    /// Phase 2: scatter `Fill` requests per the `need` tallies and gather
    /// the batches. Returns `false` when every contacted shard is gone.
    fn scatter_gather(&mut self) -> bool {
        let mut any = false;
        for (s, &n) in self.need.iter().enumerate() {
            if n > 0 {
                let _ = self.cluster.workers[s].cmd.send(ShardCmd::Fill(n));
            }
        }
        for (s, &n) in self.need.iter().enumerate() {
            self.batches[s].clear();
            self.cursors[s] = 0;
            if n == 0 {
                continue;
            }
            match self.cluster.workers[s].reply.recv() {
                Ok(ShardReply::Batch(items)) => {
                    self.batches[s] = items;
                    any = true;
                }
                Ok(ShardReply::Opened { .. }) | Err(_) => {
                    // Worker gone mid-stream (defensive; workers only exit
                    // on shutdown): write the shard off entirely.
                    self.total_remaining -= self.remaining[s];
                    self.remaining[s] = 0;
                    self.weights[s] = 0;
                }
            }
        }
        any
    }
}

impl SpatialSampler<2> for ParallelSampler<'_> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<2>> {
        // A block of one: correct, but the channel round-trip per draw is
        // exactly what `next_batch` amortises away.
        let mut one = Vec::with_capacity(1);
        self.next_batch(rng, &mut one, 1);
        one.pop()
    }

    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<2>>, k: usize) -> usize {
        let rng = &mut *rng;
        let before = buf.len();
        if self.cluster.workers.is_empty() {
            return 0;
        }
        let mut seq = std::mem::take(&mut self.seq);
        loop {
            let done = buf.len() - before;
            if done >= k {
                break;
            }
            let want = k - done;
            seq.clear();
            self.need.fill(0);
            // Phase 1: draw the shard sequence — the same per-draw
            // bookkeeping as the sequential gather, run as a block.
            match self.mode {
                SampleMode::WithReplacement => {
                    let total: u64 = self.weights.iter().sum();
                    if total == 0 {
                        break;
                    }
                    for _ in 0..want {
                        let mut target = rng.random_range(0..total);
                        for (s, &w) in self.weights.iter().enumerate() {
                            if target < w {
                                self.need[s] += 1;
                                seq.push(s);
                                break;
                            }
                            target -= w;
                        }
                    }
                }
                SampleMode::WithoutReplacement => {
                    if self.total_remaining == 0 {
                        break;
                    }
                    for _ in 0..want {
                        if self.total_remaining == 0 {
                            break;
                        }
                        let mut target = rng.random_range(0..self.total_remaining);
                        for (s, &w) in self.remaining.iter().enumerate() {
                            if target < w {
                                self.remaining[s] -= 1;
                                self.total_remaining -= 1;
                                self.need[s] += 1;
                                seq.push(s);
                                break;
                            }
                            target -= w;
                        }
                    }
                }
            }
            if seq.is_empty() {
                break;
            }
            // Phase 2: scatter the owed counts, gather the batches.
            if !self.scatter_gather() {
                break;
            }
            // Phase 3: merge in drawn order — deterministic regardless of
            // which worker answered first.
            for &s in &seq {
                if self.cursors[s] < self.batches[s].len() {
                    buf.push(self.batches[s][self.cursors[s]]);
                    self.cursors[s] += 1;
                }
            }
            // Under-delivery (a shard's stream dried before its count):
            // write off the shortfall so the retry loop re-draws it
            // elsewhere instead of spinning.
            if self.mode == SampleMode::WithoutReplacement {
                for (s, &n) in self.need.iter().enumerate() {
                    if n > 0 && self.batches[s].len() < n {
                        self.total_remaining -= self.remaining[s];
                        self.remaining[s] = 0;
                    }
                }
            } else if buf.len() - before < k {
                // With replacement a full retry can only repeat the same
                // shortfall (weights are static); stop instead of looping.
                break;
            }
        }
        self.seq = seq;
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RsTree
    }

    fn result_size(&self) -> Option<usize> {
        Some(self.total)
    }
}

impl Drop for ParallelSampler<'_> {
    fn drop(&mut self) {
        // All gathers complete before next_batch returns, so there are no
        // in-flight replies; Close tears the worker streams down.
        for w in &self.cluster.workers {
            let _ = w.cmd.send(ShardCmd::Close);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RsTreeConfig;
    use std::collections::HashSet;
    use storm_geo::Point2;

    fn grid_items(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    fn cluster(n: usize, shards: usize) -> ParallelRsCluster {
        DistributedRsTree::bulk_load(grid_items(n), shards, RsTreeConfig::with_fanout(16))
            .into_parallel()
    }

    #[test]
    fn parallel_wor_stream_is_exactly_the_query_result() {
        let mut c = cluster(5_000, 8);
        let q = Rect2::from_corners(Point2::xy(13.0, 7.0), Point2::xy(61.0, 29.0));
        let expected: HashSet<u64> = grid_items(5_000)
            .iter()
            .filter(|it| q.contains_point(&it.point))
            .map(|it| it.id)
            .collect();
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 42);
        assert_eq!(s.result_size(), Some(expected.len()));
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 64) == 0 {
                break;
            }
            for item in &buf {
                assert!(got.insert(item.id), "duplicate across shards: {}", item.id);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn stream_is_deterministic_under_a_fixed_seed() {
        let q = Rect2::from_corners(Point2::xy(5.0, 2.0), Point2::xy(70.0, 40.0));
        let run = |batch: usize| -> Vec<u64> {
            let mut c = cluster(4_000, 8);
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, 7);
            let mut rng = StdRng::seed_from_u64(9);
            let mut out = Vec::new();
            let mut buf = Vec::new();
            while out.len() < 512 {
                buf.clear();
                if s.next_batch(&mut rng, &mut buf, batch) == 0 {
                    break;
                }
                out.extend(buf.iter().map(|it| it.id));
            }
            drop(s);
            c.join();
            out
        };
        // Same seeds, different runs: identical sequences despite thread
        // scheduling differences.
        assert_eq!(run(64), run(64));
    }

    #[test]
    fn join_round_trips_the_cluster() {
        let c = cluster(2_000, 4);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.len(), 2_000);
        let mut d = c.join();
        assert_eq!(d.num_shards(), 4);
        assert_eq!(d.len(), 2_000);
        // The reassembled cluster still samples correctly.
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(30.0, 10.0));
        let expected = d.exact_count(&q);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = d.sampler(q, SampleMode::WithoutReplacement);
        assert_eq!(s.draw(100_000, &mut rng).len(), expected);
    }

    #[test]
    fn with_replacement_batches_stream_indefinitely() {
        let mut c = cluster(1_000, 3);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(50.0, 9.0));
        let mut s = c.sampler(q, SampleMode::WithReplacement, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = Vec::new();
        for _ in 0..10 {
            buf.clear();
            assert_eq!(s.next_batch(&mut rng, &mut buf, 256), 256);
            for item in &buf {
                assert!(q.contains_point(&item.point));
            }
        }
    }

    #[test]
    fn empty_query_yields_empty_stream() {
        let mut c = cluster(500, 4);
        let q = Rect2::from_corners(Point2::xy(900.0, 900.0), Point2::xy(901.0, 901.0));
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 1);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(s.next_sample(&mut rng).is_none());
        assert_eq!(s.result_size(), Some(0));
    }

    #[test]
    fn sequential_and_parallel_agree_on_first_draw_distribution() {
        // Chi-square on the first parallel draw against uniform — the same
        // bar the sequential gather's test holds itself to.
        let items = grid_items(900);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 0.0)); // 100 pts
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = std::collections::HashMap::new();
        let mut c =
            DistributedRsTree::bulk_load(items, 6, RsTreeConfig::with_fanout(8)).into_parallel();
        for t in 0..trials {
            let mut s = c.sampler(q, SampleMode::WithoutReplacement, t as u64);
            let Some(first) = s.next_sample(&mut rng) else {
                panic!("non-empty query produced no sample");
            };
            *counts.entry(first.id).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 100);
        let expected = trials as f64 / 100.0;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99 dof, p = 0.001 critical ≈ 148.2.
        assert!(chi < 148.2, "chi² = {chi}");
    }
}
