//! Weighted selection over canonical-set parts.
//!
//! The RS-tree must repeatedly pick a canonical part proportionally to its
//! subtree count. The paper names **acceptance/rejection sampling** as the
//! mechanism that "quickly locates large subtrees in `R_Q`" while never
//! opening small ones; we additionally provide a linear scan (the naive
//! baseline the A/R idea beats, used in the ablation experiment E9) and
//! Vose's alias method (an `O(1)`-per-draw refinement).

use rand::{Rng, RngExt};

/// Which weighted-selection algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectorKind {
    /// `O(parts)` per draw: walk the cumulative sum.
    Linear,
    /// The paper's acceptance/rejection: pick a part uniformly, accept with
    /// probability `count/max_count`. `O(1)` memory, expected
    /// `parts·max/total` trials per draw (trials are in-memory only — no
    /// I/O — which is the point).
    AcceptReject,
    /// Vose's alias method: `O(parts)` setup, exact `O(1)` per draw.
    #[default]
    Alias,
}

/// A sampler over indices `0..n` with fixed positive weights.
#[derive(Debug, Clone)]
pub struct WeightedSelector {
    pub(crate) kind: SelectorKind,
    pub(crate) weights: Vec<u64>,
    pub(crate) total: u64,
    pub(crate) max: u64,
    // Alias tables (built only for SelectorKind::Alias).
    pub(crate) alias_prob: Vec<f64>,
    pub(crate) alias_idx: Vec<u32>,
}

impl WeightedSelector {
    /// Builds a selector; weights must be non-empty with a positive total.
    ///
    /// Returns `None` for an empty or all-zero weight vector, or for more
    /// than `u32::MAX` weights (alias-table indices are `u32`).
    pub fn new(weights: Vec<u64>, kind: SelectorKind) -> Option<Self> {
        let total: u64 = weights.iter().sum();
        if weights.is_empty() || total == 0 || u32::try_from(weights.len()).is_err() {
            return None;
        }
        let max = *weights.iter().max()?;
        let (alias_prob, alias_idx) = if kind == SelectorKind::Alias {
            build_alias(&weights, total)
        } else {
            (Vec::new(), Vec::new())
        };
        let selector = WeightedSelector {
            kind,
            weights,
            total,
            max,
            alias_prob,
            alias_idx,
        };
        // The alias construction must conserve probability mass exactly;
        // audit it at the only point a table is ever built.
        debug_assert_eq!(
            crate::validate::check_selector(&selector),
            Ok(()),
            "weighted-selector invariant audit failed at construction"
        );
        Some(selector)
    }

    /// Number of weighted entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when there are no entries (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Weight of entry `i`.
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// All weights, in entry order (the construction-time counts).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Draws an index with probability `weight[i] / total`.
    pub fn pick(&self, rng: &mut dyn Rng) -> usize {
        let rng = &mut *rng;
        match self.kind {
            SelectorKind::Linear => {
                let mut target = rng.random_range(0..self.total);
                for (i, &w) in self.weights.iter().enumerate() {
                    if target < w {
                        return i;
                    }
                    target -= w;
                }
                unreachable!("cumulative walk exceeded total")
            }
            SelectorKind::AcceptReject => loop {
                let i = rng.random_range(0..self.weights.len());
                let w = self.weights[i];
                if w == self.max || rng.random_range(0..self.max) < w {
                    return i;
                }
            },
            SelectorKind::Alias => {
                let i = rng.random_range(0..self.alias_prob.len());
                if rng.random_range(0.0..1.0) < self.alias_prob[i] {
                    i
                } else {
                    self.alias_idx[i] as usize
                }
            }
        }
    }
}

/// Vose's alias-table construction.
fn build_alias(weights: &[u64], total: u64) -> (Vec<f64>, Vec<u32>) {
    let n = weights.len();
    let mut prob = vec![0.0f64; n];
    let mut alias = vec![0u32; n];
    let scale = n as f64 / total as f64;
    let scaled: Vec<f64> = weights.iter().map(|&w| w as f64 * scale).collect();
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            // storm-lint: allow(R5): new() rejects > u32::MAX weights, so i fits
            small.push(i as u32);
        } else {
            // storm-lint: allow(R5): new() rejects > u32::MAX weights, so i fits
            large.push(i as u32);
        }
    }
    let mut scaled = scaled;
    while let Some(s) = small.pop() {
        // NB: the donor must only leave `large` after the pairing — popping
        // both stacks in one tuple pattern would silently drop an index
        // when `small` runs dry first.
        let Some(&l) = large.last() else {
            // Rounding left a ~1.0 cell with no donor.
            prob[s as usize] = 1.0;
            continue;
        };
        prob[s as usize] = scaled[s as usize];
        alias[s as usize] = l;
        scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
        if scaled[l as usize] < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    for i in large {
        prob[i as usize] = 1.0;
    }
    (prob, alias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(WeightedSelector::new(vec![], SelectorKind::Linear).is_none());
        assert!(WeightedSelector::new(vec![0, 0], SelectorKind::Alias).is_none());
    }

    #[test]
    fn single_entry_always_selected() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            SelectorKind::Linear,
            SelectorKind::AcceptReject,
            SelectorKind::Alias,
        ] {
            let s = WeightedSelector::new(vec![5], kind).unwrap();
            for _ in 0..10 {
                assert_eq!(s.pick(&mut rng), 0);
            }
        }
    }

    #[test]
    fn zero_weight_entries_never_selected() {
        let mut rng = StdRng::seed_from_u64(2);
        for kind in [
            SelectorKind::Linear,
            SelectorKind::AcceptReject,
            SelectorKind::Alias,
        ] {
            let s = WeightedSelector::new(vec![0, 7, 0, 3], kind).unwrap();
            for _ in 0..200 {
                let i = s.pick(&mut rng);
                assert!(i == 1 || i == 3, "{kind:?} selected zero-weight {i}");
            }
        }
    }

    /// Chi-square goodness of fit against the target distribution.
    fn chi_square(kind: SelectorKind, weights: &[u64], draws: usize, seed: u64) -> f64 {
        let s = WeightedSelector::new(weights.to_owned(), kind).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[s.pick(&mut rng)] += 1;
        }
        let total: u64 = weights.iter().sum();
        let mut chi = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if w == 0 {
                assert_eq!(counts[i], 0);
                continue;
            }
            let expected = draws as f64 * w as f64 / total as f64;
            let d = counts[i] as f64 - expected;
            chi += d * d / expected;
        }
        chi
    }

    #[test]
    fn all_selectors_match_the_target_distribution() {
        // 7 non-zero cells → 6 dof; chi² critical value at p=0.001 is 22.46.
        let weights = vec![1u64, 2, 4, 8, 16, 100, 1000];
        for (kind, seed) in [
            (SelectorKind::Linear, 10),
            (SelectorKind::AcceptReject, 11),
            (SelectorKind::Alias, 12),
        ] {
            let chi = chi_square(kind, &weights, 200_000, seed);
            assert!(chi < 22.46, "{kind:?}: chi² = {chi}");
        }
    }

    #[test]
    fn skewed_weights_with_alias_stay_exact() {
        let weights = vec![1u64, 1_000_000];
        let s = WeightedSelector::new(weights, SelectorKind::Alias).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ones = 0usize;
        let draws = 2_000_000;
        for _ in 0..draws {
            if s.pick(&mut rng) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / draws as f64;
        assert!(frac > 0.999_99 - 3e-4, "frac = {frac}");
    }
}

#[cfg(test)]
mod alias_regression_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Regression: with all-equal weights, every index must be reachable
    /// (a tuple-pattern `while let` in the alias construction used to drop
    /// the last index of the `large` stack).
    #[test]
    fn equal_weights_cover_all_indices() {
        for n in [2usize, 3, 25, 100] {
            let s = WeightedSelector::new(vec![1u64; n], SelectorKind::Alias).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let mut seen = vec![0usize; n];
            for _ in 0..n * 500 {
                seen[s.pick(&mut rng)] += 1;
            }
            assert!(seen.iter().all(|&c| c > 0), "n={n}: {seen:?}");
        }
    }
}
