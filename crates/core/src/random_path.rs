//! Olken's `RandomPath` method, adapted to R-trees.

use std::collections::HashSet;

use rand::{Rng, RngExt};
use storm_geo::Rect;
use storm_rtree::{Item, RTree};

use crate::{SampleMode, SamplerKind, SpatialSampler};

/// Takes a sample from `P ∩ Q` by walking a random path from the root down
/// to the leaf level, using the subtree sizes `|P(u)|` to set the branch
/// probabilities (paper §3.1, after Olken [15]).
///
/// The walk is restricted to children whose rectangles intersect `Q`
/// (skipping provably-empty branches), which distorts the leaf-reaching
/// probabilities; uniformity is restored by an acceptance test with
/// probability `Π S(u)/|P(u)|` along the path, where `S(u)` is the count
/// mass of `u`'s intersecting children. A drawn leaf item outside `Q` is
/// rejected outright. The accepted output is exactly uniform on `P ∩ Q`.
///
/// Each sample costs `O(log N)` node visits — but every visit is a block
/// read from a *different* part of the tree, so `k` samples cost `Ω(k)`
/// I/Os. "Reasonably good, but only in internal memory."
#[derive(Debug)]
pub struct RandomPath<'a, const D: usize> {
    tree: &'a RTree<D>,
    query: Rect<D>,
    mode: SampleMode,
    seen: HashSet<u64>,
    attempt_budget: usize,
}

/// Default number of root-to-leaf attempts one `next_sample` call may spend.
pub const DEFAULT_ATTEMPT_BUDGET: usize = 100_000;

impl<'a, const D: usize> RandomPath<'a, D> {
    /// Creates a sampler over the given tree and query.
    pub fn new(tree: &'a RTree<D>, query: Rect<D>, mode: SampleMode) -> Self {
        RandomPath {
            tree,
            query,
            mode,
            seen: HashSet::new(),
            attempt_budget: DEFAULT_ATTEMPT_BUDGET,
        }
    }

    /// Sets the per-call attempt budget (guards empty/exhausted queries).
    #[must_use]
    pub fn with_attempt_budget(mut self, budget: usize) -> Self {
        self.attempt_budget = budget.max(1);
        self
    }

    /// One root-to-leaf walk; `None` when the attempt was rejected.
    fn walk(&self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let rng = &mut *rng;
        let mut id = self.tree.root_id()?;
        let mut accept_prob = 1.0f64;
        loop {
            // storm-analyzer: allow(A8): RandomPath charges one read per visited node by definition — the visit IS the algorithm
            let view = self.tree.visit(id);
            if view.is_leaf() {
                let items = view.items();
                debug_assert!(!items.is_empty());
                let item = items[rng.random_range(0..items.len())];
                if !self.query.contains_point(&item.point) {
                    return None;
                }
                // Uniformity correction for the Q-restricted descent.
                if accept_prob < 1.0 && rng.random_range(0.0..1.0) >= accept_prob {
                    return None;
                }
                return Some(item);
            }
            // Count mass of children that can contain query results.
            let children = view.children();
            let mut mass = 0u64;
            for &c in children {
                // storm-analyzer: allow(A8): RandomPath is the paper's boxed baseline; its per-node walk is the measured cost model
                let cv = self.tree.view_free_of_charge(c);
                if cv.rect.intersects(&self.query) {
                    mass += cv.count as u64;
                }
            }
            if mass == 0 {
                return None;
            }
            accept_prob *= mass as f64 / view.count as f64;
            // Weighted choice among intersecting children.
            let mut target = rng.random_range(0..mass);
            let mut chosen = None;
            for &c in children {
                // storm-analyzer: allow(A8): RandomPath is the paper's boxed baseline; its per-node walk is the measured cost model
                let cv = self.tree.view_free_of_charge(c);
                if cv.rect.intersects(&self.query) {
                    if target < cv.count as u64 {
                        chosen = Some(c);
                        break;
                    }
                    target -= cv.count as u64;
                }
            }
            // `mass > 0` guarantees a hit; `?` keeps the walk total anyway.
            id = chosen?;
        }
    }
}

impl<const D: usize> SpatialSampler<D> for RandomPath<'_, D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        for _ in 0..self.attempt_budget {
            let Some(item) = self.walk(rng) else {
                continue;
            };
            match self.mode {
                SampleMode::WithReplacement => return Some(item),
                SampleMode::WithoutReplacement => {
                    if self.seen.insert(item.id) {
                        return Some(item);
                    }
                }
            }
        }
        None
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::RandomPath
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use storm_geo::{Point2, Rect2};
    use storm_rtree::{BulkMethod, RTreeConfig};

    fn tree_grid(n: usize, fanout: usize) -> RTree<2> {
        let items: Vec<Item<2>> = (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect();
        RTree::bulk_load(items, RTreeConfig::with_fanout(fanout), BulkMethod::Hilbert)
    }

    #[test]
    fn samples_lie_inside_the_query() {
        let tree = tree_grid(5000, 8);
        let q = Rect2::from_corners(Point2::xy(20.0, 10.0), Point2::xy(70.0, 30.0));
        let mut s = RandomPath::new(&tree, q, SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let item = s.next_sample(&mut rng).unwrap();
            assert!(q.contains_point(&item.point));
        }
    }

    #[test]
    fn empty_query_ends_the_stream() {
        let tree = tree_grid(500, 8);
        let q = Rect2::from_corners(Point2::xy(1e6, 1e6), Point2::xy(1e6 + 1.0, 1e6 + 1.0));
        let mut s = RandomPath::new(&tree, q, SampleMode::WithReplacement).with_attempt_budget(200);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.next_sample(&mut rng).is_none());
    }

    #[test]
    fn without_replacement_never_repeats_and_exhausts() {
        let tree = tree_grid(400, 4);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(7.0, 1.0));
        let expected = tree.query(&q).len();
        assert_eq!(expected, 16);
        let mut s =
            RandomPath::new(&tree, q, SampleMode::WithoutReplacement).with_attempt_budget(50_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ids = std::collections::HashSet::new();
        while let Some(item) = s.next_sample(&mut rng) {
            assert!(ids.insert(item.id));
        }
        assert_eq!(ids.len(), expected);
    }

    #[test]
    fn distribution_is_uniform_over_the_query_result() {
        // Skewed data: a dense cluster outside Q and sparse points inside,
        // so a biased descent would visibly distort frequencies.
        let mut items: Vec<Item<2>> = (0..2000)
            .map(|i| {
                Item::new(
                    Point2::xy(500.0 + (i % 40) as f64 * 0.1, 500.0 + (i / 40) as f64 * 0.1),
                    i as u64,
                )
            })
            .collect();
        // 20 sparse points inside the query region.
        for j in 0..20u64 {
            items.push(Item::new(Point2::xy(j as f64 * 4.0, 10.0), 10_000 + j));
        }
        let tree = RTree::bulk_load(items, RTreeConfig::with_fanout(8), BulkMethod::Hilbert);
        let q = Rect2::from_corners(Point2::xy(-1.0, 0.0), Point2::xy(100.0, 20.0));
        let mut s = RandomPath::new(&tree, q, SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 40_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let item = s.next_sample(&mut rng).unwrap();
            *counts.entry(item.id).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 20);
        // chi² with 19 dof, p=0.001 critical value 43.82.
        let expected = trials as f64 / 20.0;
        let chi: f64 = counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi < 43.82, "chi² = {chi}; counts = {counts:?}");
    }

    #[test]
    fn per_sample_io_is_proportional_to_height() {
        let tree = tree_grid(100_000, 16);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(99.0, 500.0));
        let mut s = RandomPath::new(&tree, q, SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(5);
        tree.io().reset();
        let k = 200;
        for _ in 0..k {
            s.next_sample(&mut rng).unwrap();
        }
        let reads = tree.io().reads();
        // At least one full path of reads per accepted sample.
        assert!(reads >= (k * tree.height() as usize) as u64 / 2);
    }
}
