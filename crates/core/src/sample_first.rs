//! The `SampleFirst` baseline.

use std::collections::HashSet;
use std::sync::Arc;

use rand::{Rng, RngExt};
use storm_geo::Rect;
use storm_rtree::{IoStats, Item};

use crate::{SampleMode, SamplerKind, SpatialSampler};

/// Upon request, pick a point randomly from `P` and test whether it lies in
/// `Q`; dispose and repeat otherwise (paper §3.1).
///
/// Expected `O(N/q)` probes per sample — excellent when the query covers a
/// large constant fraction of `P`, catastrophic for selective queries, and
/// non-terminating when `q = 0`. The non-termination hazard is made finite
/// here by a per-call probe budget ([`SampleFirst::with_probe_budget`]);
/// hitting the budget ends the stream with `None`.
///
/// The sampler reads records directly from the base data (a flat scan file
/// in STORM's storage engine), so each probe is charged as one block read
/// against the supplied [`IoStats`].
#[derive(Debug)]
pub struct SampleFirst<'a, const D: usize> {
    data: &'a [Item<D>],
    query: Rect<D>,
    mode: SampleMode,
    probe_budget: usize,
    io: Option<Arc<IoStats>>,
    seen: HashSet<u64>,
}

/// Default number of probes one `next_sample` call may spend.
pub const DEFAULT_PROBE_BUDGET: usize = 1_000_000;

impl<'a, const D: usize> SampleFirst<'a, D> {
    /// Creates a sampler over the raw data array.
    pub fn new(data: &'a [Item<D>], query: Rect<D>, mode: SampleMode) -> Self {
        SampleFirst {
            data,
            query,
            mode,
            probe_budget: DEFAULT_PROBE_BUDGET,
            io: None,
            seen: HashSet::new(),
        }
    }

    /// Sets the per-call probe budget (the divergence guard).
    #[must_use]
    pub fn with_probe_budget(mut self, budget: usize) -> Self {
        self.probe_budget = budget.max(1);
        self
    }

    /// Charges one block read per probe against `io`.
    #[must_use]
    pub fn with_io(mut self, io: Arc<IoStats>) -> Self {
        self.io = Some(io);
        self
    }
}

impl<const D: usize> SpatialSampler<D> for SampleFirst<'_, D> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<D>> {
        let rng = &mut *rng;
        if self.data.is_empty() {
            return None;
        }
        if self.mode == SampleMode::WithoutReplacement && self.seen.len() == self.data.len() {
            return None;
        }
        for _ in 0..self.probe_budget {
            let item = self.data[rng.random_range(0..self.data.len())];
            if let Some(io) = &self.io {
                io.record_reads(1);
            }
            if !self.query.contains_point(&item.point) {
                continue;
            }
            match self.mode {
                SampleMode::WithReplacement => return Some(item),
                SampleMode::WithoutReplacement => {
                    if self.seen.insert(item.id) {
                        return Some(item);
                    }
                }
            }
        }
        None
    }

    /// Batched draw: runs the probe loop for the whole block, charging the
    /// I/O counter once per block instead of once per probe (one atomic add
    /// amortised over up to `k` accepted samples and all their rejected
    /// probes).
    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<D>>, k: usize) -> usize {
        let rng = &mut *rng;
        if self.data.is_empty() {
            return 0;
        }
        let before = buf.len();
        let mut probes = 0u64;
        // One shared budget for the block: `k` samples are expected to cost
        // `k·N/q` probes, so the guard scales with the block.
        let budget = self.probe_budget.saturating_mul(k) as u64;
        while buf.len() - before < k && probes < budget {
            if self.mode == SampleMode::WithoutReplacement && self.seen.len() == self.data.len() {
                break;
            }
            probes += 1;
            let item = self.data[rng.random_range(0..self.data.len())];
            if !self.query.contains_point(&item.point) {
                continue;
            }
            match self.mode {
                SampleMode::WithReplacement => buf.push(item),
                SampleMode::WithoutReplacement => {
                    if self.seen.insert(item.id) {
                        buf.push(item);
                    }
                }
            }
        }
        if let Some(io) = &self.io {
            io.record_reads(probes);
        }
        buf.len() - before
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::SampleFirst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use storm_geo::{Point2, Rect2};

    fn grid(n: usize) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
            .collect()
    }

    #[test]
    fn samples_lie_inside_the_query() {
        let data = grid(10_000);
        let q = Rect2::from_corners(Point2::xy(10.0, 10.0), Point2::xy(60.0, 60.0));
        let mut s = SampleFirst::new(&data, q, SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let item = s.next_sample(&mut rng).unwrap();
            assert!(q.contains_point(&item.point));
        }
    }

    #[test]
    fn empty_query_hits_the_probe_budget() {
        let data = grid(1000);
        let q = Rect2::from_corners(Point2::xy(5000.0, 5000.0), Point2::xy(5001.0, 5001.0));
        let mut s = SampleFirst::new(&data, q, SampleMode::WithReplacement).with_probe_budget(500);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(s.next_sample(&mut rng).is_none());
    }

    #[test]
    fn io_cost_scales_inversely_with_selectivity() {
        let data = grid(10_000);
        let io = IoStats::shared();
        let mut rng = StdRng::seed_from_u64(3);

        // ~1% selective query.
        let narrow = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(9.0, 9.0));
        let mut s =
            SampleFirst::new(&data, narrow, SampleMode::WithReplacement).with_io(Arc::clone(&io));
        for _ in 0..50 {
            s.next_sample(&mut rng).unwrap();
        }
        let narrow_io = io.reads();

        io.reset();
        // 100% selective query.
        let wide = Rect2::everything();
        let mut s =
            SampleFirst::new(&data, wide, SampleMode::WithReplacement).with_io(Arc::clone(&io));
        for _ in 0..50 {
            s.next_sample(&mut rng).unwrap();
        }
        let wide_io = io.reads();
        assert!(
            narrow_io > wide_io * 10,
            "narrow {narrow_io} vs wide {wide_io}"
        );
    }

    #[test]
    fn without_replacement_exhausts_exactly_once() {
        let data = grid(100);
        let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(4.0, 0.0));
        let mut s = SampleFirst::new(&data, q, SampleMode::WithoutReplacement);
        let mut rng = StdRng::seed_from_u64(4);
        let mut ids = Vec::new();
        while let Some(item) = s.next_sample(&mut rng) {
            ids.push(item.id);
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_dataset_returns_none() {
        let data: Vec<Item<2>> = Vec::new();
        let mut s = SampleFirst::new(&data, Rect2::everything(), SampleMode::WithReplacement);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(s.next_sample(&mut rng).is_none());
    }
}
