//! Invariant validators for the sampling indexes, modeled on
//! `storm_rtree::validate`.
//!
//! Each `check_*` function walks one structure and returns a description of
//! the **first** violated invariant, or `Ok(())`. They exist because the
//! estimators' unbiasedness proofs lean on structural properties the type
//! system cannot express — per-node counts that are exactly subtree sizes,
//! alias tables whose probability mass reconstructs the input weights,
//! hash-level membership that makes an item's survival geometric(½). A
//! silent violation does not crash anything; it just skews every estimate
//! produced afterwards, which is far worse.
//!
//! Mutation paths call these through debug-assert-gated audit hooks
//! (release builds pay nothing); the property tests in
//! `tests/validate_prop.rs` drive random insert/delete/sample sequences
//! against them directly.

use std::collections::HashSet;

use storm_geo::Rect;
use storm_rtree::NodeId;

use crate::ls_tree::{level_of, LsTree};
use crate::rs_tree::RsTree;
use crate::weighted::{SelectorKind, WeightedSelector};

/// Checks every LS-tree invariant:
///
/// * each level's R-tree is structurally valid ([`storm_rtree::validate`]);
/// * level sizes are monotone non-increasing (each `P_{i+1} ⊆ P_i`);
/// * membership matches the hash exactly: for `i >= 1`, level `i` holds
///   precisely the items of level `i-1` with `level_of(id) >= i` — the
///   geometric(½) survival that makes a level-`i` hit a `2^-i` coin flip;
/// * no duplicate ids within a level.
pub fn check_ls_tree<const D: usize>(ls: &LsTree<D>) -> Result<(), String> {
    if ls.levels.is_empty() {
        return Err("LS-tree has no levels (level 0 must always exist)".into());
    }
    let mut prev: Option<HashSet<u64>> = None;
    for (i, tree) in ls.levels.iter().enumerate() {
        // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
        storm_rtree::validate::check(tree).map_err(|e| format!("level {i}: {e}"))?;
        let items = tree.items();
        // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
        let ids: HashSet<u64> = items.iter().map(|it| it.id).collect();
        if ids.len() != items.len() {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!("level {i} holds duplicate ids"));
        }
        if let Some(below) = &prev {
            if below.len() < ids.len() {
                // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                return Err(format!(
                    "level {i} larger than level {} ({} > {})",
                    i - 1,
                    ids.len(),
                    below.len()
                ));
            }
            let expect_u32 = u32::try_from(i).unwrap_or(u32::MAX);
            // storm-analyzer: allow(A2): order only picks which violating id the error names; whether an error exists is order-independent, and audits never feed estimates
            for id in &ids {
                if !below.contains(id) {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!("level {i} id {id} missing from level {}", i - 1));
                }
            }
            for id in below {
                let survives = level_of(*id, ls.salt) >= expect_u32;
                if survives && !ids.contains(id) {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!(
                        "id {id} hashes to level >= {i} but is absent from level {i}"
                    ));
                }
                if !survives && ids.contains(id) {
                    // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                    return Err(format!(
                        "id {id} hashes below level {i} but is present in level {i}"
                    ));
                }
            }
        }
        prev = Some(ids);
    }
    Ok(())
}

/// Checks every RS-tree invariant:
///
/// * the backing R-tree is structurally valid (covers the per-node
///   weight/count sums sampling descent relies on);
/// * every buffered node id is reachable from the root;
/// * buffers respect `buffer_size`, hold no duplicate ids, and every
///   buffered item lies inside its node's rectangle and really exists in
///   that node's subtree (spent randomness must come from `P(u)`).
pub fn check_rs_tree<const D: usize>(rs: &RsTree<D>) -> Result<(), String> {
    storm_rtree::validate::check(&rs.tree)?;
    let mut reachable: HashSet<NodeId> = HashSet::new();
    if let Some(root) = rs.tree.root_id() {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if reachable.insert(id) {
                // storm-analyzer: allow(A8): debug invariant checker, not a sampling path
                stack.extend(rs.tree.view_free_of_charge(id).children());
            }
        }
    }
    for (&node, buf) in &rs.buffers {
        if !reachable.contains(&node) {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!("buffer attached to unreachable node {node:?}"));
        }
        if buf.len() > rs.cfg.buffer_size {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!(
                "buffer of node {node:?} overflows: {} > {}",
                buf.len(),
                rs.cfg.buffer_size
            ));
        }
        // storm-analyzer: allow(A8): debug invariant checker, not a sampling path
        let view = rs.tree.view_free_of_charge(node);
        // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
        let mut seen: HashSet<u64> = HashSet::with_capacity(buf.len());
        for item in buf {
            if !seen.insert(item.id) {
                // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                return Err(format!("buffer of node {node:?} repeats id {}", item.id));
            }
            if !view.rect.contains_point(&item.point) {
                // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                return Err(format!(
                    "buffered item {} outside the rect of node {node:?}",
                    item.id
                ));
            }
            let mut found = false;
            rs.tree.for_each_in(&Rect::from_point(item.point), |it| {
                found |= it.id == item.id;
            });
            if !found {
                // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
                return Err(format!(
                    "buffered item {} no longer exists in the tree",
                    item.id
                ));
            }
        }
    }
    Ok(())
}

/// Tolerance for alias-table probability mass checks. Vose's construction
/// moves O(n) rounded f64 slices around; 1e-6 of slack per slot absorbs
/// that while still catching any real bookkeeping bug.
const MASS_EPS: f64 = 1e-6;

/// Checks every weighted-selector invariant:
///
/// * cached `total` and `max` match the weights;
/// * for the alias kind: tables are full-length, probabilities sit in
///   `[0, 1]`, alias targets are in range, and the reconstructed per-index
///   mass `prob[i] + Σ_{alias[j]=i}(1-prob[j])` equals `n·w_i/total` — i.e.
///   the table's total probability mass is 1 and every index draws with
///   exactly its weight share.
pub fn check_selector(sel: &WeightedSelector) -> Result<(), String> {
    let n = sel.weights.len();
    if n == 0 {
        return Err("selector with no weights".into());
    }
    let total: u64 = sel.weights.iter().sum();
    if total != sel.total {
        return Err(format!("cached total {} != sum {}", sel.total, total));
    }
    let max = sel.weights.iter().copied().max().unwrap_or(0);
    if max != sel.max {
        return Err(format!("cached max {} != max {}", sel.max, max));
    }
    if sel.kind != SelectorKind::Alias {
        return Ok(());
    }
    if sel.alias_prob.len() != n || sel.alias_idx.len() != n {
        return Err(format!(
            "alias tables sized {}/{} for {n} weights",
            sel.alias_prob.len(),
            sel.alias_idx.len()
        ));
    }
    let mut mass: Vec<f64> = sel.alias_prob.clone();
    for (j, &target) in sel.alias_idx.iter().enumerate() {
        let p = sel.alias_prob[j];
        if !(0.0..=1.0 + MASS_EPS).contains(&p) {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!("alias probability {p} of slot {j} outside [0, 1]"));
        }
        let target = target as usize;
        if target >= n {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!("alias target {target} of slot {j} out of range"));
        }
        if p < 1.0 {
            mass[target] += 1.0 - p;
        }
    }
    let mut mass_sum = 0.0;
    for (i, (&m, &w)) in mass.iter().zip(&sel.weights).enumerate() {
        let expected = n as f64 * w as f64 / total as f64;
        if (m - expected).abs() > MASS_EPS * n as f64 {
            // storm-analyzer: allow(A4): failure-path error formatting — allocates only when an audit fails, never per draw; the sampling-cone link is type-sharing, not a hot path
            return Err(format!(
                "index {i} draws with mass {m:.9} instead of {expected:.9}"
            ));
        }
        mass_sum += m;
    }
    if (mass_sum - n as f64).abs() > MASS_EPS * n as f64 {
        return Err(format!(
            "alias table total mass {mass_sum:.9} != {n} (probability mass must be 1)"
        ));
    }
    Ok(())
}

/// How large a structure may grow before the per-mutation audit switches
/// from every operation to a sampled cadence (audits are `O(n log n)`; at
/// every mutation that compounds to `O(n^2 log n)` over a workload).
pub(crate) const AUDIT_EVERY_OP_LIMIT: usize = 512;

/// Sampled cadence beyond [`AUDIT_EVERY_OP_LIMIT`]: one audit per this many
/// mutations.
pub(crate) const AUDIT_SAMPLE_PERIOD: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use storm_geo::Point;
    use storm_rtree::{Item, RTreeConfig};

    fn pts(n: u64) -> Vec<Item<2>> {
        (0..n)
            .map(|i| Item {
                id: i,
                point: Point::new([(i % 97) as f64, (i / 97) as f64]),
            })
            .collect()
    }

    #[test]
    fn fresh_structures_validate() {
        let ls = LsTree::bulk_load(pts(600), RTreeConfig::default(), 7);
        assert_eq!(check_ls_tree(&ls), Ok(()));

        let mut rs = RsTree::bulk_load(pts(600), crate::rs_tree::RsTreeConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        rs.prefill(&mut rng);
        assert_eq!(check_rs_tree(&rs), Ok(()));

        let sel = WeightedSelector::new(vec![3, 1, 4, 1, 5, 9, 2, 6], SelectorKind::Alias)
            .expect("positive weights");
        assert_eq!(check_selector(&sel), Ok(()));
    }

    #[test]
    fn corrupted_alias_table_is_caught() {
        let mut sel = WeightedSelector::new(vec![3, 1, 4, 1, 5], SelectorKind::Alias)
            .expect("positive weights");
        // Promote a partial slot to certainty: its alias target silently
        // loses the complementary mass.
        let j = sel
            .alias_prob
            .iter()
            .position(|&p| p < 1.0)
            .expect("uneven weights leave partial slots");
        sel.alias_prob[j] = 1.0;
        let err = check_selector(&sel).expect_err("mass mismatch");
        assert!(err.contains("mass"), "{err}");
    }

    #[test]
    fn corrupted_buffer_is_caught() {
        let mut rs = RsTree::bulk_load(pts(600), crate::rs_tree::RsTreeConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        rs.prefill(&mut rng);
        let node = *rs
            .buffers
            .keys()
            .next()
            .expect("600 points buffer something");
        rs.buffers.get_mut(&node).expect("present").push(Item {
            id: 1 << 40, // not a real item
            point: Point::new([0.0, 0.0]),
        });
        assert!(check_rs_tree(&rs).is_err());
    }
}
