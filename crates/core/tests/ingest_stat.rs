//! Mid-ingest unbiasedness: the statistical suite for the LSM-style
//! delta+runs ingest tier.
//!
//! The contract under test: a [`CompositeSampler`] stream stays a uniform
//! sampler over the **live** delta+runs union *while* a writer thread is
//! inserting — every item live for the whole observation window must be
//! drawn equally often (chi-square gated at three seeds), and once the
//! writer finishes, draws must be uniform over the full enlarged union.
//! A scripted single-thread variant replays an exact insert/draw/freeze
//! interleaving twice and demands byte-identical sample sequences.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use storm_core::{IngestConfig, IngestIndex, SampleMode, SpatialSampler};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;
use storm_testkit::{assert_deterministic, assert_uniform, watchdog};

/// Items on a 64-wide grid; id doubles as the identity tallied below.
fn grid_item(i: usize) -> Item<2> {
    Item::new(Point2::xy((i % 64) as f64, (i / 64) as f64), i as u64)
}

/// A query rectangle that matches every grid item.
fn everything() -> Rect2 {
    Rect2::from_corners(Point2::xy(-1.0, -1.0), Point2::xy(1e6, 1e6))
}

const INITIAL_RUN: usize = 512;
const INITIAL: usize = 768; // 512 frozen + 256 delta at open
const WRITER: usize = 512; // inserted concurrently, ids 768..1280
const TOTAL: usize = INITIAL + WRITER;

/// One concurrent-writer round at one seed. The writer is rate-locked to
/// the reader — one insert released per 64-draw batch — so the schedule
/// always interleaves inserts with draws (a free-running writer could
/// finish before the reader tallies anything on a slow machine), while
/// the insert itself still races the next batch.
fn concurrent_writer_round(seed: u64) {
    // delta_limit far above the writer's volume: an auto-freeze would
    // publish a new epoch, and the open stream — correctly pinned to its
    // own epoch — would stop seeing the writer's inserts.
    let idx = Arc::new(IngestIndex::<2>::new(IngestConfig {
        fanout: 16,
        delta_limit: 100_000,
        max_runs: 8,
    }));
    idx.insert_batch((0..INITIAL_RUN).map(grid_item));
    idx.minor_freeze();
    idx.insert_batch((INITIAL_RUN..INITIAL).map(grid_item));
    assert_eq!(idx.run_count(), 1);
    assert_eq!(idx.len(), INITIAL);

    let query = everything();
    // Opened before the writer starts: both streams are pinned to the
    // pre-writer epoch, whose delta is exactly what the writer grows.
    let mut wr = idx.sampler(&query, SampleMode::WithReplacement);
    let mut wor = idx.sampler(&query, SampleMode::WithoutReplacement);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tally = vec![0u64; TOTAL];
    let mut concurrent_draws = 0u64;

    let done = AtomicBool::new(false);
    let (tick_tx, tick_rx) = unbounded::<()>();
    std::thread::scope(|scope| {
        let idx_w = Arc::clone(&idx);
        let done_w = &done;
        scope.spawn(move || {
            for i in INITIAL..TOTAL {
                if tick_rx.recv().is_err() {
                    break;
                }
                idx_w.insert(grid_item(i));
            }
            done_w.store(true, Ordering::Release);
        });
        let mut buf = Vec::new();
        while !done.load(Ordering::Acquire) {
            buf.clear();
            let got = wr.next_batch(&mut rng, &mut buf, 64);
            assert_eq!(got, 64, "WR stream must never end");
            for item in &buf {
                tally[item.id as usize] += 1;
            }
            concurrent_draws += got as u64;
            let _ = tick_tx.send(());
        }
    });
    assert_eq!(idx.len(), TOTAL, "writer inserts lost");

    // Items live for the entire window (the initial 768) are symmetric:
    // at every draw each had the same inclusion probability, whatever the
    // union size was at that instant — so their tallies must be uniform.
    assert!(
        concurrent_draws >= (WRITER * 64) as u64,
        "writer was rate-locked to batches, got only {concurrent_draws} draws"
    );
    assert_uniform(
        &tally[..INITIAL],
        &format!("seed {seed}: mid-ingest draws over always-live items"),
    );

    // After the writer joins, draws are uniform over the full union.
    let mut post = vec![0u64; TOTAL];
    let mut buf = Vec::new();
    for _ in 0..256 {
        buf.clear();
        wr.next_batch(&mut rng, &mut buf, 64);
        for item in &buf {
            post[item.id as usize] += 1;
        }
    }
    assert_uniform(
        &post,
        &format!("seed {seed}: post-ingest draws over full union"),
    );
    assert_eq!(
        wr.result_size(),
        Some(TOTAL),
        "estimators must see the live union size"
    );

    // The WOR stream opened before any insert drains the full union
    // exactly once — late arrivals included, nothing duplicated.
    let mut seen = vec![0u32; TOTAL];
    while let Some(item) = wor.next_sample(&mut rng) {
        seen[item.id as usize] += 1;
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "seed {seed}: WOR drain must cover the union exactly once"
    );
}

#[test]
fn mid_ingest_draws_stay_uniform_under_concurrent_writer() {
    for seed in [0xA1u64, 0xB2, 0xC3] {
        watchdog(
            Duration::from_secs(120),
            &format!("concurrent writer round, seed {seed}"),
            move || concurrent_writer_round(seed),
        );
    }
}

/// The deterministic-schedule variant: a seeded script interleaves
/// inserts, WR draws, WOR draws, and freezes on one thread; the full
/// emitted id sequences must replay byte-identically.
fn run_script(seed: u64) -> (Vec<u64>, Vec<u64>, u64, usize) {
    let idx = IngestIndex::<2>::new(IngestConfig {
        fanout: 8,
        delta_limit: 10_000,
        max_runs: 4,
    });
    idx.insert_batch((0..200).map(grid_item));
    idx.minor_freeze();
    let query = everything();
    let mut wr = idx.sampler(&query, SampleMode::WithReplacement);
    let mut wor = idx.sampler(&query, SampleMode::WithoutReplacement);
    let mut draw_rng = StdRng::seed_from_u64(seed);
    let mut script_rng = StdRng::seed_from_u64(seed ^ 0x5C41_77ED);
    let mut next_id = 200usize;
    let (mut wr_ids, mut wor_ids) = (Vec::new(), Vec::new());
    for _ in 0..600 {
        match script_rng.random_range(0..10u32) {
            // Inserts land in whichever epoch is current; once a freeze
            // has retired the streams' epoch they (correctly) stop seeing
            // new inserts — the replay must reproduce that too.
            0..=3 => {
                idx.insert(grid_item(next_id));
                next_id += 1;
            }
            4..=6 => {
                if let Some(item) = wr.next_sample(&mut draw_rng) {
                    wr_ids.push(item.id);
                }
            }
            7..=8 => {
                if let Some(item) = wor.next_sample(&mut draw_rng) {
                    wor_ids.push(item.id);
                }
            }
            _ => {
                idx.minor_freeze();
            }
        }
    }
    (wr_ids, wor_ids, idx.epoch(), idx.len())
}

#[test]
fn scripted_interleaving_replays_identically() {
    for seed in [1u64, 2, 3] {
        assert_deterministic(
            2,
            &format!("scripted ingest interleaving, seed {seed}"),
            || run_script(seed),
        );
    }
}

/// WOR draws made *between* scripted inserts stay uniform: run the same
/// deterministic interleaving many times with varying draw seeds and
/// tally which item each (insert-count, draw-index) slot produced. Any
/// position bias (e.g. favouring frozen runs over fresh delta items)
/// would show up as a skewed marginal.
#[test]
fn interleaved_wor_draws_are_uniform_over_the_live_union() {
    watchdog(
        Duration::from_secs(120),
        "interleaved WOR uniformity",
        || {
            const LIVE: usize = 40;
            let mut first_draw = HashMap::<u64, u64>::new();
            for trial in 0..4_000u64 {
                let idx = IngestIndex::<2>::new(IngestConfig {
                    fanout: 4,
                    delta_limit: 10_000,
                    max_runs: 4,
                });
                // 30 frozen + 5 delta at open, 5 inserted mid-stream.
                idx.insert_batch((0..30).map(grid_item));
                idx.minor_freeze();
                idx.insert_batch((30..35).map(grid_item));
                let query = everything();
                let mut s = idx.sampler(&query, SampleMode::WithoutReplacement);
                let mut rng = StdRng::seed_from_u64(trial);
                for i in 35..LIVE {
                    idx.insert(grid_item(i));
                }
                // First draw after the inserts: must be uniform over all 40.
                let item = s.next_sample(&mut rng).expect("union is non-empty");
                *first_draw.entry(item.id).or_default() += 1;
            }
            let counts: Vec<u64> = (0..LIVE as u64)
                .map(|id| first_draw.get(&id).copied().unwrap_or(0))
                .collect();
            assert_uniform(&counts, "first WOR draw after mid-stream inserts");
        },
    );
}
