//! Epoch-handoff determinism for the parallel executor: a sampling
//! session opened before [`ParallelRsCluster::install_epoch`] swaps the
//! worker pool must keep serving its open-time snapshot — polled across
//! the swap it is byte-identical to a solo run that never swapped —
//! while sessions opened after the swap see only the new data.
//!
//! The contract rests on two mechanisms, both exercised here: streams
//! that already materialised pin the frozen arena through their sampler,
//! and streams that have *not* been polled yet pin it through the arena
//! `Arc` captured at open. Command-channel FIFO makes "before/after the
//! swap" exact, not approximate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use storm_core::{DistributedRsTree, ParallelRsCluster, RsTreeConfig, SampleMode, SpatialSampler};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;

const N_OLD: usize = 1_200;
const N_NEW: usize = 900;
const NEW_BASE: u64 = 100_000;

/// Epoch-0 data: ids `0..N_OLD` on a 100-wide grid.
fn old_items() -> Vec<Item<2>> {
    (0..N_OLD)
        .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
        .collect()
}

/// Epoch-1 data: distinct ids at the same coordinates, so every query
/// that matched old data also matches new data — any leak across the
/// swap shows up as a foreign id, not as an empty result.
fn new_items() -> Vec<Item<2>> {
    (0..N_NEW)
        .map(|i| {
            Item::new(
                Point2::xy((i % 100) as f64, (i / 100) as f64),
                NEW_BASE + i as u64,
            )
        })
        .collect()
}

fn cluster() -> ParallelRsCluster {
    DistributedRsTree::bulk_load(old_items(), 4, RsTreeConfig::with_fanout(16)).into_parallel()
}

fn next_tree() -> DistributedRsTree {
    DistributedRsTree::bulk_load(new_items(), 4, RsTreeConfig::with_fanout(16))
}

fn query() -> Rect2 {
    Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(59.0, 9.0))
}

/// Drains a WOR stream in 32-item batches; `swap_after` installs the new
/// epoch once that many batches have been delivered.
fn drain(c: &ParallelRsCluster, swap_after: Option<usize>) -> Vec<u64> {
    let mut s = c.sampler(query(), SampleMode::WithoutReplacement, 7);
    let mut rng = StdRng::seed_from_u64(13);
    let mut ids = Vec::new();
    let mut buf = Vec::new();
    let mut batches = 0usize;
    loop {
        buf.clear();
        if s.next_batch(&mut rng, &mut buf, 32) == 0 {
            break;
        }
        ids.extend(buf.iter().map(|item| item.id));
        batches += 1;
        if Some(batches) == swap_after {
            assert_eq!(c.install_epoch(next_tree()), 1, "first swap is epoch 1");
        }
    }
    ids
}

#[test]
fn stream_polled_across_swap_matches_the_solo_run_exactly() {
    let swapped_cluster = cluster();
    let across_swap = drain(&swapped_cluster, Some(2));
    let solo = drain(&cluster(), None);
    assert_eq!(
        across_swap, solo,
        "session opened before the swap must replay the no-swap run byte-identically"
    );
    assert!(
        across_swap.iter().all(|&id| id < N_OLD as u64),
        "pinned stream leaked post-swap data"
    );

    // A session opened after the swap sees only — and exactly — the new
    // epoch's result set.
    let post = drain(&swapped_cluster, None);
    assert!(
        post.iter().all(|&id| id >= NEW_BASE),
        "post-swap session served old-epoch items"
    );
    let expect = new_items()
        .iter()
        .filter(|item| query().contains_point(&item.point))
        .count();
    assert_eq!(
        post.len(),
        expect,
        "post-swap session must cover the new result set"
    );

    // Cluster-wide counters follow the new epoch, and joining returns
    // the swapped tree.
    assert_eq!(swapped_cluster.epoch(), 1);
    assert_eq!(swapped_cluster.len(), N_NEW);
    assert_eq!(swapped_cluster.join().len(), N_NEW);
}

#[test]
fn stream_opened_but_never_polled_before_swap_still_pins_its_epoch() {
    let c = cluster();
    // Open (the coordinator round-trips shard counts) but do not fill:
    // every shard slot is still lazy when the swap lands.
    let mut s = c.sampler(query(), SampleMode::WithoutReplacement, 7);
    assert_eq!(c.install_epoch(next_tree()), 1);

    let mut rng = StdRng::seed_from_u64(13);
    let mut ids = Vec::new();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if s.next_batch(&mut rng, &mut buf, 32) == 0 {
            break;
        }
        ids.extend(buf.iter().map(|item| item.id));
    }
    drop(s);
    assert!(
        ids.iter().all(|&id| id < N_OLD as u64),
        "lazily-materialised stream must use its open-time arena"
    );
    let solo = drain(&cluster(), None);
    assert_eq!(
        ids, solo,
        "unpolled-at-swap stream must still replay the solo run"
    );
}

#[test]
fn repeated_swaps_bump_the_epoch_and_retarget_new_sessions() {
    let c = cluster();
    assert_eq!(c.epoch(), 0);
    assert_eq!(c.install_epoch(next_tree()), 1);
    assert_eq!(
        c.install_epoch(DistributedRsTree::bulk_load(
            old_items(),
            4,
            RsTreeConfig::with_fanout(16),
        )),
        2
    );
    assert_eq!(c.epoch(), 2);
    // Back on the old data set: a fresh session serves it again.
    let ids = drain(&c, None);
    assert!(ids.iter().all(|&id| id < N_OLD as u64));
    assert_eq!(c.len(), N_OLD);
}
