//! Crash/recovery matrix for minor freezes and compactions: a fault
//! injected at **any** step of the merge — entry, delta drain, each run
//! concatenation, post-sort, pre-publish — must leave the run registry
//! on exactly the old epoch or exactly the new one. A half-merged state
//! (some runs swapped, delta partially drained, epoch bumped without the
//! new run-set) must be unobservable, and no item may ever be lost or
//! duplicated.
//!
//! Two injection kinds cover the two crash shapes: `WorkerPanic` unwinds
//! out of the build mid-merge (a crash), `DropReply` abandons it silently
//! (a cancelled background job). Both the exhaustive step sweep and a
//! proptest-driven matrix over index shapes run every case under a
//! watchdog and finish by draining the union without replacement — the
//! strongest "nothing torn" witness available.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use storm_core::{IngestConfig, IngestIndex, SampleMode, SpatialSampler};
use storm_faultkit::{FaultKind, StepFault};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;
use storm_testkit::watchdog;

fn grid_item(i: usize) -> Item<2> {
    Item::new(Point2::xy((i % 64) as f64, (i / 64) as f64), i as u64)
}

fn everything() -> Rect2 {
    Rect2::from_corners(Point2::xy(-1.0, -1.0), Point2::xy(1e6, 1e6))
}

/// Builds an index with `runs` frozen runs of `per_run` items plus
/// `delta` unfrozen items (ids are consecutive from 0).
fn build_index(runs: usize, per_run: usize, delta: usize) -> IngestIndex<2> {
    let idx = IngestIndex::new(IngestConfig {
        fanout: 8,
        delta_limit: 100_000,
        max_runs: usize::MAX >> 1, // no surprise auto-merges during setup
    });
    let mut next = 0usize;
    for _ in 0..runs {
        idx.insert_batch((next..next + per_run).map(grid_item));
        next += per_run;
        idx.minor_freeze();
    }
    idx.insert_batch((next..next + delta).map(grid_item));
    assert_eq!(idx.run_count(), runs);
    assert_eq!(idx.delta_len(), delta);
    idx
}

/// What one epoch looks like from outside, for old-vs-new comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Shape {
    epoch: u64,
    run_lens: Vec<usize>,
    delta_len: usize,
    total: usize,
}

fn shape(idx: &IngestIndex<2>) -> Shape {
    let (epoch, state) = idx.pin();
    Shape {
        epoch,
        run_lens: state.runs.iter().map(|r| r.len()).collect(),
        delta_len: state.delta.len(),
        total: state.len(),
    }
}

/// Drains the index without replacement and asserts the stream emits
/// exactly `0..total` — every item once, nothing lost, nothing invented.
fn assert_union_intact(idx: &IngestIndex<2>, total: usize, label: &str) {
    let mut s = idx.sampler(&everything(), SampleMode::WithoutReplacement);
    let mut rng = StdRng::seed_from_u64(7);
    let mut seen = HashSet::new();
    while let Some(item) = s.next_sample(&mut rng) {
        assert!(seen.insert(item.id), "{label}: duplicate id {}", item.id);
    }
    let expect: HashSet<u64> = (0..total as u64).collect();
    assert_eq!(seen, expect, "{label}: drained union diverged");
}

/// Runs one crash case: inject `kind` at merge step `step` of a
/// minor-freeze (or full compaction), then check the epoch is either the
/// untouched old one or the complete new one.
fn crash_case(runs: usize, per_run: usize, delta: usize, step: u64, kind: FaultKind, full: bool) {
    let total = runs * per_run + delta;
    let before = shape(&build_index(runs, per_run, delta));
    let idx = build_index(runs, per_run, delta)
        .with_fault_hook(Arc::new(StepFault::at_compaction_step(step, kind)));
    assert_eq!(shape(&idx), before, "setup must be deterministic");

    let label = format!(
        "{}x{}+{delta} {kind:?}@step{step} {}",
        runs,
        per_run,
        if full { "compact" } else { "freeze" }
    );
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if full {
            idx.compact()
        } else {
            idx.minor_freeze()
        }
    }));

    let after = shape(&idx);
    match outcome {
        Err(payload) => {
            // Unwound mid-merge: only WorkerPanic does that, and the old
            // epoch must be byte-for-byte what it was.
            assert_eq!(kind, FaultKind::WorkerPanic, "{label}: unexpected unwind");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("injected compaction fault"),
                "{label}: foreign panic {msg:?}"
            );
            assert_eq!(after, before, "{label}: crash mutated the old epoch");
        }
        Ok(None) => {
            // Abandoned (DropReply fired before publish): nothing changed.
            assert_eq!(after, before, "{label}: abandoned build left residue");
        }
        Ok(Some(epoch)) => {
            // Published: the fault step was past the build's last
            // checkpoint, so the new epoch must be complete.
            assert_eq!(epoch, before.epoch + 1, "{label}: epoch must bump by one");
            assert_eq!(after.epoch, epoch);
            assert_eq!(after.total, total, "{label}: publish lost items");
            assert_eq!(after.delta_len, 0, "{label}: publish must drain the delta");
            if full {
                assert_eq!(
                    after.run_lens,
                    vec![total],
                    "{label}: compaction must merge all"
                );
            }
        }
    }
    // Whatever epoch won, the union is whole and the index still ingests.
    assert_union_intact(&idx, total, &label);
    idx.insert(grid_item(total));
    assert_eq!(idx.len(), total + 1, "{label}: index wedged after fault");
}

/// Exhaustive sweep: every merge step of a 3-run + delta compaction, both
/// crash kinds, freeze and compact paths. Steps beyond the build's last
/// checkpoint simply publish — also asserted.
#[test]
fn every_crash_point_leaves_old_or_new_epoch_never_torn() {
    watchdog(Duration::from_secs(300), "exhaustive crash sweep", || {
        for full in [false, true] {
            for kind in [FaultKind::WorkerPanic, FaultKind::DropReply] {
                for step in 0..10u64 {
                    crash_case(3, 40, 17, step, kind, full);
                }
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The matrix property: arbitrary index shapes, arbitrary crash
    // coordinates, both kinds, both merge paths — the epoch is never torn.
    #[test]
    fn crash_matrix_never_tears_an_epoch(
        runs in 1usize..5,
        per_run in 1usize..60,
        delta in 1usize..40,
        step in 0u64..12,
        panics in 0u8..2,
        full_merge in 0u8..2,
    ) {
        let kind = if panics == 1 { FaultKind::WorkerPanic } else { FaultKind::DropReply };
        let full = full_merge == 1;
        watchdog(Duration::from_secs(120), "crash matrix case", move || {
            crash_case(runs, per_run, delta, step, kind, full);
        });
    }
}
