//! Property tests: every sampling method, on arbitrary point sets and
//! queries, agrees exactly with a brute-force reference.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashSet;
use storm_core::{
    DistributedRsTree, LsTree, QueryFirst, RandomPath, RsTree, RsTreeConfig, SampleFirst,
    SampleMode, SpatialSampler,
};
use storm_geo::{Point2, Rect2};
use storm_rtree::{BulkMethod, Item, RTree, RTreeConfig};

fn items_strategy() -> impl Strategy<Value = Vec<Item<2>>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..250).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(Point2::xy(x, y), i as u64))
            .collect()
    })
}

fn query_strategy() -> impl Strategy<Value = Rect2> {
    (0.0..100.0f64, 0.0..100.0f64, 0.0..60.0f64, 0.0..60.0f64)
        .prop_map(|(x, y, w, h)| Rect2::from_corners(Point2::xy(x, y), Point2::xy(x + w, y + h)))
}

fn reference(items: &[Item<2>], query: &Rect2) -> HashSet<u64> {
    items
        .iter()
        .filter(|it| query.contains_point(&it.point))
        .map(|it| it.id)
        .collect()
}

fn drain(sampler: &mut dyn SpatialSampler<2>, rng: &mut StdRng) -> Option<HashSet<u64>> {
    let mut out = HashSet::new();
    while let Some(item) = sampler.next_sample(rng) {
        if !out.insert(item.id) {
            return None; // duplicate — WOR violation
        }
    }
    Some(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn query_first_and_ls_exhaust_exactly(
        items in items_strategy(),
        query in query_strategy(),
        seed in 0u64..1000,
    ) {
        let expected = reference(&items, &query);
        let mut rng = StdRng::seed_from_u64(seed);

        let tree = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(8), BulkMethod::Str);
        let mut qf = QueryFirst::new(&tree, &query, SampleMode::WithoutReplacement);
        prop_assert_eq!(drain(&mut qf, &mut rng).expect("no dupes"), expected.clone());

        let ls = LsTree::bulk_load(items.clone(), RTreeConfig::with_fanout(8), seed);
        let mut lss = ls.sampler(query);
        prop_assert_eq!(drain(&mut lss, &mut rng).expect("no dupes"), expected);
    }

    #[test]
    fn rs_and_distributed_exhaust_exactly(
        items in items_strategy(),
        query in query_strategy(),
        seed in 0u64..1000,
        shards in 1usize..6,
    ) {
        let expected = reference(&items, &query);
        let mut rng = StdRng::seed_from_u64(seed);

        let mut rs = RsTree::bulk_load(items.clone(), RsTreeConfig::with_fanout(8));
        let mut rss = rs.sampler(query, SampleMode::WithoutReplacement);
        prop_assert_eq!(rss.result_size(), Some(expected.len()));
        prop_assert_eq!(drain(&mut rss, &mut rng).expect("no dupes"), expected.clone());
        drop(rss);

        let mut cluster = DistributedRsTree::bulk_load(items, shards, RsTreeConfig::with_fanout(8));
        let mut ds = cluster.sampler(query, SampleMode::WithoutReplacement);
        prop_assert_eq!(drain(&mut ds, &mut rng).expect("no dupes"), expected);
    }

    #[test]
    fn random_path_and_sample_first_stay_inside_the_query(
        items in items_strategy(),
        query in query_strategy(),
        seed in 0u64..1000,
    ) {
        prop_assume!(!items.is_empty());
        let expected = reference(&items, &query);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::with_fanout(8), BulkMethod::Hilbert);

        let mut rp = RandomPath::new(&tree, query, SampleMode::WithReplacement)
            .with_attempt_budget(50_000);
        let mut sf = SampleFirst::new(&items, query, SampleMode::WithReplacement)
            .with_probe_budget(50_000);
        for _ in 0..32 {
            if let Some(item) = rp.next_sample(&mut rng) {
                prop_assert!(expected.contains(&item.id));
            }
            if let Some(item) = sf.next_sample(&mut rng) {
                prop_assert!(expected.contains(&item.id));
            }
        }
    }

    #[test]
    fn rs_updates_then_streams_match_reference(
        initial in items_strategy(),
        inserts in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..60),
        delete_every in 2usize..5,
        query in query_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rs = RsTree::bulk_load(initial.clone(), RsTreeConfig::with_fanout(8));
        let mut live: Vec<Item<2>> = initial;
        // Interleave inserts and deletes.
        for (j, (x, y)) in inserts.into_iter().enumerate() {
            let item = Item::new(Point2::xy(x, y), 1_000_000 + j as u64);
            rs.insert(item, &mut rng);
            live.push(item);
            if j % delete_every == 0 && !live.is_empty() {
                let victim = live.swap_remove(j * 7919 % live.len());
                prop_assert!(rs.remove(&victim.point, victim.id, &mut rng));
            }
        }
        let expected = reference(&live, &query);
        let mut s = rs.sampler(query, SampleMode::WithoutReplacement);
        prop_assert_eq!(s.result_size(), Some(expected.len()));
        prop_assert_eq!(drain(&mut s, &mut rng).expect("no dupes"), expected);
    }

    #[test]
    fn ls_updates_then_streams_match_reference(
        initial in items_strategy(),
        inserts in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..60),
        query in query_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ls = LsTree::bulk_load(initial.clone(), RTreeConfig::with_fanout(8), seed);
        let mut live: Vec<Item<2>> = initial;
        for (j, (x, y)) in inserts.into_iter().enumerate() {
            let item = Item::new(Point2::xy(x, y), 1_000_000 + j as u64);
            ls.insert(item);
            live.push(item);
            if j % 3 == 0 {
                let victim = live.swap_remove(j * 31 % live.len());
                prop_assert!(ls.remove(&victim.point, victim.id));
            }
        }
        let expected = reference(&live, &query);
        let mut s = ls.sampler(query);
        prop_assert_eq!(drain(&mut s, &mut rng).expect("no dupes"), expected);
    }
}
