//! The fault-matrix property suite: arbitrary deterministic fault plans
//! against the parallel scatter-gather executor.
//!
//! The contract under test, for *every* plan the generator can produce:
//!
//! 1. **Accountable completion** — a WOR query either delivers an item or
//!    writes its mass off with a typed reason; delivered + lost always
//!    equals the declared result size. No silent truncation.
//! 2. **No hangs** — every case runs under a [`storm_testkit::watchdog`];
//!    a wedged retry loop fails the suite instead of wedging CI.
//! 3. **Deterministic replay** — the same seed + plan reproduces the
//!    identical item sequence and the identical dead-shard set.
//! 4. **Unbiased survivors** — when shards die, the stream stays a
//!    uniform sampler over the surviving population (chi-square gated).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use storm_core::{DistributedRsTree, ParallelRsCluster, RsTreeConfig, SampleMode, SpatialSampler};
use storm_faultkit::{FaultHook, FaultKind, FaultPlan, FaultSite, RetryPolicy};
use storm_geo::{Point2, Rect2};
use storm_rtree::Item;
use storm_testkit::{assert_deterministic, assert_uniform, watchdog};

fn grid_items(n: usize) -> Vec<Item<2>> {
    (0..n)
        .map(|i| Item::new(Point2::xy((i % 100) as f64, (i / 100) as f64), i as u64))
        .collect()
}

fn cluster(n: usize, shards: usize) -> ParallelRsCluster {
    DistributedRsTree::bulk_load(grid_items(n), shards, RsTreeConfig::with_fanout(16))
        .into_parallel()
}

/// Everything one faulted run observed, for cross-run comparison.
#[derive(Debug, PartialEq)]
struct RunReport {
    ids: Vec<u64>,
    dead: Vec<usize>,
    lost: u64,
    total: u64,
}

/// Drains one WOR stream under the given plan + policy, asserting the
/// stream never repeats an id, and reports what happened.
fn run_case(plan: &FaultPlan, retry: RetryPolicy, stream_seed: u64) -> RunReport {
    let mut c = cluster(1_200, 4);
    c.set_retry_policy(retry);
    c.set_fault_hook(Arc::new(plan.clone()));
    let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(59.0, 9.0));
    let mut s = c.sampler(q, SampleMode::WithoutReplacement, stream_seed);
    let mut rng = StdRng::seed_from_u64(stream_seed ^ 0x5A5A);
    let mut ids = Vec::new();
    let mut seen = HashSet::new();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if s.next_batch(&mut rng, &mut buf, 32) == 0 {
            break;
        }
        for item in &buf {
            assert!(seen.insert(item.id), "duplicate id {} delivered", item.id);
            ids.push(item.id);
        }
    }
    let d = s.degraded().expect("parallel sampler always reports");
    RunReport {
        ids,
        dead: d.dead_shards(),
        lost: d.lost_mass(),
        total: d.initial_total,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    // The tentpole property: any mix of delayed, dropped, and panicking
    // shard traffic leaves the query accountable, hang-free, and
    // replayable.
    #[test]
    fn any_fault_plan_completes_accountably_and_replays(
        plan_seed in 0u64..1_000,
        drops in 0u16..300,
        panics in 0u16..120,
        delays in 0u16..200,
        retries in 1u32..4,
    ) {
        let plan = FaultPlan::seeded(plan_seed)
            .with_drops(drops)
            .with_panics(panics)
            .with_delays(delays, 1);
        let retry = RetryPolicy { max_retries: retries, timeout_ms: 40, backoff: 2 };
        let first = {
            let plan = plan.clone();
            watchdog(Duration::from_secs(120), "fault-matrix run 1", move || {
                run_case(&plan, retry, plan_seed)
            })
        };
        // Accountable completion: delivered + written-off == declared.
        prop_assert_eq!(first.ids.len() as u64 + first.lost, first.total);
        // Anything written off must carry a dead-shard declaration. The
        // converse does not hold: a shard that dies at *open* is declared
        // dead with zero lost mass (its count never reached the
        // coordinator, so its mass is not part of `total` — DESIGN.md §9),
        // and since the coordinator prefetches, a shard can die after its
        // banked surplus already covered everything it still owed.
        prop_assert!(first.lost == 0 || !first.dead.is_empty());
        // Deterministic replay: identical items, identical dead shards.
        let again = {
            let plan = plan.clone();
            watchdog(Duration::from_secs(120), "fault-matrix run 2", move || {
                run_case(&plan, retry, plan_seed)
            })
        };
        prop_assert_eq!(first, again);
    }
}

/// A plan that kills every request once all shards are dead must end the
/// stream with a full typed write-off — never a hang, never a silent
/// empty result.
#[test]
fn total_failure_is_fully_declared() {
    let plan = FaultPlan::seeded(3).with_panics(1_000);
    let retry = RetryPolicy {
        max_retries: 1,
        timeout_ms: 30,
        backoff: 2,
    };
    let report = watchdog(Duration::from_secs(60), "total failure", move || {
        run_case(&plan, retry, 11)
    });
    assert_eq!(report.ids.len(), 0, "panicking shards delivered items");
    assert_eq!(report.lost, report.total);
    assert_eq!(report.dead.len(), 4, "every shard must be declared dead");
}

/// Acceptance gate: the same seed + plan yields byte-identical output and
/// the identical dead-shard set across three runs.
#[test]
fn fault_replay_is_identical_across_three_runs() {
    let plan = FaultPlan::seeded(77).with_drops(150).with_panics(60);
    let retry = RetryPolicy {
        max_retries: 2,
        timeout_ms: 40,
        backoff: 2,
    };
    assert_deterministic(3, "seed 77 fault replay", || {
        let plan = plan.clone();
        watchdog(Duration::from_secs(120), "replay run", move || {
            run_case(&plan, retry, 7)
        })
    });
}

/// A quiet plan must not change the stream at all: installing the hook
/// and the retry machinery with zero fault rates reproduces the exact
/// no-hook sequence (the zero-overhead-when-disabled claim, output side).
#[test]
fn quiet_plan_matches_the_unhooked_stream() {
    let q = Rect2::from_corners(Point2::xy(10.0, 1.0), Point2::xy(80.0, 11.0));
    let drain = |c: &mut ParallelRsCluster| -> Vec<u64> {
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 9);
        let mut rng = StdRng::seed_from_u64(13);
        let mut out = Vec::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 64) == 0 {
                break;
            }
            out.extend(buf.iter().map(|it| it.id));
        }
        out
    };
    let mut plain = cluster(2_000, 4);
    let baseline = drain(&mut plain);
    assert!(!baseline.is_empty());
    let mut hooked = cluster(2_000, 4);
    hooked.set_fault_hook(Arc::new(FaultPlan::seeded(1)));
    hooked.set_retry_policy(RetryPolicy::default());
    assert_eq!(drain(&mut hooked), baseline);
}

/// Deterministically kills shard 0 at every fill, forever.
#[derive(Debug)]
struct KillShard0;

impl FaultHook for KillShard0 {
    fn fault(&self, site: FaultSite, shard: usize, _op: u64) -> Option<FaultKind> {
        (site == FaultSite::Fill && shard == 0).then_some(FaultKind::WorkerPanic)
    }
}

/// With one shard dead, the stream must remain a *uniform* sampler over
/// the survivors: first-delivery frequencies pass the shared chi-square
/// gate over the surviving population.
#[test]
fn survivors_are_sampled_uniformly_after_a_shard_dies() {
    let mut c = cluster(900, 3);
    c.set_fault_hook(Arc::new(KillShard0));
    c.set_retry_policy(RetryPolicy {
        max_retries: 1,
        timeout_ms: 30,
        backoff: 2,
    });
    let q = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(59.0, 0.0)); // 60 pts
                                                                              // Survivor population: drain one full degraded stream.
    let survivors: HashSet<u64> = {
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = HashSet::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if s.next_batch(&mut rng, &mut buf, 16) == 0 {
                break;
            }
            out.extend(buf.iter().map(|it| it.id));
        }
        out
    };
    assert!(
        !survivors.is_empty() && survivors.len() < 60,
        "expected a partial survivor set, got {}",
        survivors.len()
    );
    // First-delivery frequencies over many independent streams.
    let trials = 40 * survivors.len();
    let mut rng = StdRng::seed_from_u64(4);
    let mut counts: std::collections::HashMap<u64, u64> = Default::default();
    for t in 0..trials {
        let mut s = c.sampler(q, SampleMode::WithoutReplacement, 100 + t as u64);
        let first = s
            .next_sample(&mut rng)
            .expect("survivors must keep delivering");
        assert!(
            survivors.contains(&first.id),
            "dead shard delivered id {}",
            first.id
        );
        *counts.entry(first.id).or_default() += 1;
    }
    assert_eq!(counts.len(), survivors.len(), "some survivors never drawn");
    let freq: Vec<u64> = counts.values().copied().collect();
    assert_uniform(&freq, "degraded first draws");
}
