//! Property tests for the invariant validators: arbitrary interleavings of
//! inserts, deletes, and sampling must leave every structure in a state
//! [`storm_core::validate`] accepts, and the weighted-selector alias table
//! must conserve probability mass for arbitrary weight vectors.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use storm_core::validate::{check_ls_tree, check_rs_tree, check_selector};
use storm_core::{LsTree, RsTree, RsTreeConfig, SampleMode, SelectorKind, WeightedSelector};
use storm_geo::{Point2, Rect2};
use storm_rtree::{Item, RTreeConfig};

/// One step of a random workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    /// Remove the `i % live`-th currently live item.
    Remove(usize),
    /// Open a sampler over a query window and drain up to 8 samples.
    Sample(f64, f64, f64, f64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Op::Insert(x, y)),
            1 => (0usize..1024).prop_map(Op::Remove),
            1 => (0.0..80.0f64, 0.0..80.0f64, 1.0..40.0f64, 1.0..40.0f64)
                .prop_map(|(x, y, w, h)| Op::Sample(x, y, w, h)),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ls_tree_invariants_hold_under_random_workloads(ops in ops_strategy(), salt in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(salt ^ 0xA5);
        let mut ls: LsTree<2> = LsTree::bulk_load(Vec::new(), RTreeConfig::default(), salt);
        let mut live: Vec<Item<2>> = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::Insert(x, y) => {
                    let item = Item::new(Point2::xy(*x, *y), next_id);
                    next_id += 1;
                    ls.insert(item);
                    live.push(item);
                }
                Op::Remove(i) => {
                    if !live.is_empty() {
                        let item = live.swap_remove(i % live.len());
                        prop_assert!(ls.remove(&item.point, item.id));
                    }
                }
                Op::Sample(x, y, w, h) => {
                    let q = Rect2::from_corners(Point2::xy(*x, *y), Point2::xy(x + w, y + h));
                    let mut sampler = ls.sampler(q);
                    for _ in 0..8 {
                        use storm_core::SpatialSampler;
                        if sampler.next_sample(&mut rng).is_none() {
                            break;
                        }
                    }
                }
            }
            if let Err(e) = check_ls_tree(&ls) {
                return Err(TestCaseError::fail(format!("after {op:?}: {e}")));
            }
        }
        prop_assert_eq!(ls.len(), live.len());
    }

    #[test]
    fn rs_tree_invariants_hold_under_random_workloads(ops in ops_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A);
        let mut rs: RsTree<2> = RsTree::bulk_load(Vec::new(), RsTreeConfig::default());
        rs.prefill(&mut rng);
        let mut live: Vec<Item<2>> = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::Insert(x, y) => {
                    let item = Item::new(Point2::xy(*x, *y), next_id);
                    next_id += 1;
                    rs.insert(item, &mut rng);
                    live.push(item);
                }
                Op::Remove(i) => {
                    if !live.is_empty() {
                        let item = live.swap_remove(i % live.len());
                        prop_assert!(rs.remove(&item.point, item.id, &mut rng));
                    }
                }
                Op::Sample(x, y, w, h) => {
                    let q = Rect2::from_corners(Point2::xy(*x, *y), Point2::xy(x + w, y + h));
                    let mut sampler = rs.sampler(q, SampleMode::WithReplacement);
                    for _ in 0..8 {
                        use storm_core::SpatialSampler;
                        if sampler.next_sample(&mut rng).is_none() {
                            break;
                        }
                    }
                }
            }
            if let Err(e) = check_rs_tree(&rs) {
                return Err(TestCaseError::fail(format!("after {op:?}: {e}")));
            }
        }
        prop_assert_eq!(rs.len(), live.len());
    }

    #[test]
    fn alias_tables_conserve_mass_for_arbitrary_weights(
        weights in prop::collection::vec(0u64..1_000, 1..40),
    ) {
        let positive = weights.iter().any(|&w| w > 0);
        match WeightedSelector::new(weights.clone(), SelectorKind::Alias) {
            Some(sel) => {
                prop_assert!(positive);
                prop_assert_eq!(check_selector(&sel), Ok(()));
            }
            None => prop_assert!(!positive),
        }
        // The accept-reject kind has no tables but shares the cached
        // total/max bookkeeping.
        if let Some(sel) = WeightedSelector::new(weights, SelectorKind::AcceptReject) {
            prop_assert_eq!(check_selector(&sel), Ok(()));
        }
    }
}
