//! Online spatial clustering over samples.
//!
//! "Other spatial analytics tasks, such as clustering, can also be
//! performed on a sample of points. Intuitively, the clustering quality
//! also improves as the sample size increases." (paper §3.2)

use storm_geo::Point2;

/// Online (sequential) k-means in the style of MacQueen/Bottou: centers are
/// seeded from the first `k` distinct samples, then each subsequent sample
/// nudges its nearest center by a decaying per-center learning rate.
#[derive(Debug, Clone)]
pub struct OnlineKMeans {
    k: usize,
    centers: Vec<Point2>,
    /// Number of points assigned to each center so far.
    counts: Vec<u64>,
    /// Running mean of squared distance to the nearest center.
    inertia_mean: f64,
    n: u64,
}

impl OnlineKMeans {
    /// Creates a clusterer with `k` clusters.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        OnlineKMeans {
            k,
            centers: Vec::with_capacity(k),
            counts: Vec::with_capacity(k),
            inertia_mean: 0.0,
            n: 0,
        }
    }

    /// Number of samples consumed.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The current centers (fewer than `k` until enough distinct seeds
    /// have arrived).
    pub fn centers(&self) -> &[Point2] {
        &self.centers
    }

    /// Per-center assignment counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Running estimate of the mean squared distance to the nearest center
    /// (the per-point inertia; an online analogue of the k-means
    /// objective).
    pub fn mean_inertia(&self) -> f64 {
        self.inertia_mean
    }

    /// Index and squared distance of the center nearest to `p`.
    pub fn assign(&self, p: &Point2) -> Option<(usize, f64)> {
        self.centers
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.dist_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Feeds one spatial sample.
    pub fn push(&mut self, p: &Point2) {
        self.n += 1;
        if self.centers.len() < self.k {
            // Seed from distinct points so two identical first samples do
            // not collapse two clusters.
            // storm-lint: allow(R3): exact-duplicate check; 0.0 only from identical coords
            if !self.centers.iter().any(|c| c.dist_sq(p) == 0.0) {
                self.centers.push(*p);
                self.counts.push(1);
                return;
            }
        }
        if self.centers.is_empty() {
            return;
        }
        let (best, d2) = self.assign(p).expect("centers not empty");
        self.counts[best] += 1;
        let lr = 1.0 / self.counts[best] as f64;
        self.centers[best] = self.centers[best].lerp(p, lr);
        // Online mean of the pre-update squared distance.
        self.inertia_mean += (d2 - self.inertia_mean) / self.n as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs.
    fn blob_points(n: usize) -> Vec<Point2> {
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)];
        (0..n)
            .map(|i| {
                let (cx, cy) = centers[i % 3];
                let jitter_x = ((i * 37) % 100) as f64 / 100.0 - 0.5;
                let jitter_y = ((i * 61) % 100) as f64 / 100.0 - 0.5;
                Point2::xy(cx + jitter_x, cy + jitter_y)
            })
            .collect()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let mut km = OnlineKMeans::new(3);
        for p in blob_points(3000) {
            km.push(&p);
        }
        assert_eq!(km.centers().len(), 3);
        // Every true blob center has a recovered center within distance 1.
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)] {
            let target = Point2::xy(cx, cy);
            let nearest = km
                .centers()
                .iter()
                .map(|c| c.dist(&target))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.0, "no center near ({cx},{cy}): {nearest}");
        }
    }

    #[test]
    fn inertia_improves_with_more_samples() {
        let points = blob_points(3000);
        let mut km = OnlineKMeans::new(3);
        for p in &points[..30] {
            km.push(p);
        }
        let early = km.mean_inertia();
        for p in &points[30..] {
            km.push(p);
        }
        let late = km.mean_inertia();
        assert!(
            late <= early + 0.5,
            "inertia should not blow up: early {early}, late {late}"
        );
        // With 3 tight blobs and k=3 the steady-state inertia is small.
        assert!(late < 2.0, "late inertia {late}");
    }

    #[test]
    fn duplicate_seeds_are_rejected() {
        let mut km = OnlineKMeans::new(2);
        km.push(&Point2::xy(1.0, 1.0));
        km.push(&Point2::xy(1.0, 1.0)); // identical — must not seed cluster 2
        assert_eq!(km.centers().len(), 1);
        km.push(&Point2::xy(5.0, 5.0));
        assert_eq!(km.centers().len(), 2);
    }

    #[test]
    fn assign_picks_nearest() {
        let mut km = OnlineKMeans::new(2);
        km.push(&Point2::xy(0.0, 0.0));
        km.push(&Point2::xy(10.0, 0.0));
        let (idx, d2) = km.assign(&Point2::xy(9.0, 0.0)).unwrap();
        assert_eq!(idx, 1);
        assert!((d2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        OnlineKMeans::new(0);
    }
}
