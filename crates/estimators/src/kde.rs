//! Online kernel density estimation (the Figure 5 estimator).
//!
//! The density at a point `p` is `f(p) = (1/q) Σ_{e ∈ P_Q} κ(d(e, p))` —
//! an *average* over the query result (paper §3.2) — so each grid cell's
//! density can be estimated by the sample mean of `κ(d(sample, cell))`,
//! with a per-cell confidence interval, improving online as samples arrive.

use storm_geo::{Point2, Rect2};

use crate::online::{Estimate, Population};

/// The kernel function `κ` modelling a sample's influence at distance `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `exp(-d²/2h²) / (2πh²)` — smooth, infinite support (evaluated out to
    /// `3h` and treated as zero beyond).
    Gaussian {
        /// Bandwidth `h`.
        bandwidth: f64,
    },
    /// `(2/πh²)·(1 − d²/h²)` for `d < h` — compact support, cheap.
    Epanechnikov {
        /// Bandwidth `h`.
        bandwidth: f64,
    },
}

impl Kernel {
    /// Kernel value at distance `d`.
    pub fn eval(&self, d: f64) -> f64 {
        match *self {
            Kernel::Gaussian { bandwidth: h } => {
                let z = d / h;
                (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI * h * h)
            }
            Kernel::Epanechnikov { bandwidth: h } => {
                if d >= h {
                    0.0
                } else {
                    let z = d / h;
                    2.0 / (std::f64::consts::PI * h * h) * (1.0 - z * z)
                }
            }
        }
    }

    /// Distance beyond which the kernel is treated as zero.
    pub fn support_radius(&self) -> f64 {
        match *self {
            Kernel::Gaussian { bandwidth } => 3.0 * bandwidth,
            Kernel::Epanechnikov { bandwidth } => bandwidth,
        }
    }

    /// The bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        match *self {
            Kernel::Gaussian { bandwidth } | Kernel::Epanechnikov { bandwidth } => bandwidth,
        }
    }
}

/// Scott's rule-of-thumb bandwidth for 2-D data: `n^(-1/6) · σ`.
pub fn scott_bandwidth(n: usize, std_dev: f64) -> f64 {
    (n.max(2) as f64).powf(-1.0 / 6.0) * std_dev.max(f64::MIN_POSITIVE)
}

/// An online density map over a regular grid.
///
/// `push` updates only the cells within the kernel's support radius; cells
/// untouched by a sample implicitly observed `κ = 0`, which the estimator
/// accounts for by tracking a global sample count.
#[derive(Debug, Clone)]
pub struct KdeEstimator {
    bounds: Rect2,
    nx: usize,
    ny: usize,
    kernel: Kernel,
    /// Per-cell running sums of kernel values and their squares.
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    n: u64,
    population: Population,
}

impl KdeEstimator {
    /// Creates an estimator over `bounds` with an `nx × ny` cell grid.
    ///
    /// # Panics
    /// Panics when the grid is empty.
    pub fn new(bounds: Rect2, nx: usize, ny: usize, kernel: Kernel) -> Self {
        assert!(nx > 0 && ny > 0, "KDE grid must be non-empty");
        KdeEstimator {
            bounds,
            nx,
            ny,
            kernel,
            sum: vec![0.0; nx * ny],
            sum_sq: vec![0.0; nx * ny],
            n: 0,
            population: Population::Infinite,
        }
    }

    /// Declares the exact result size `q` (enables the finite-population
    /// correction on the per-cell intervals).
    #[must_use]
    pub fn with_population(mut self, q: usize) -> Self {
        self.population = Population::Finite(q);
        self
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of samples consumed.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Center of cell `(ix, iy)`.
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point2 {
        let fx = (ix as f64 + 0.5) / self.nx as f64;
        let fy = (iy as f64 + 0.5) / self.ny as f64;
        Point2::xy(
            self.bounds.lo().x() + fx * self.bounds.extent(0),
            self.bounds.lo().y() + fy * self.bounds.extent(1),
        )
    }

    /// Feeds one spatial sample.
    pub fn push(&mut self, p: &Point2) {
        self.n += 1;
        let radius = self.kernel.support_radius();
        let cell_w = self.bounds.extent(0) / self.nx as f64;
        let cell_h = self.bounds.extent(1) / self.ny as f64;
        // Index window covering the kernel support.
        let (ix0, ix1) = index_window(p.x(), self.bounds.lo().x(), cell_w, radius, self.nx);
        let (iy0, iy1) = index_window(p.y(), self.bounds.lo().y(), cell_h, radius, self.ny);
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let c = self.cell_center(ix, iy);
                let k = self.kernel.eval(c.dist(p));
                if k > 0.0 {
                    let idx = iy * self.nx + ix;
                    self.sum[idx] += k;
                    self.sum_sq[idx] += k * k;
                }
            }
        }
    }

    /// The density estimate for cell `(ix, iy)`.
    pub fn cell_estimate(&self, ix: usize, iy: usize) -> Estimate {
        let idx = iy * self.nx + ix;
        let n = self.n as f64;
        if self.n < 2 {
            return Estimate {
                value: if self.n == 0 { 0.0 } else { self.sum[idx] },
                std_err: f64::INFINITY,
                n: self.n,
            };
        }
        let mean = self.sum[idx] / n;
        // Var over all n observations, including the implicit zeros.
        let var = (self.sum_sq[idx] / n - mean * mean).max(0.0) * n / (n - 1.0);
        let mut se2 = var / n;
        if let Population::Finite(q) = self.population {
            let q = q as f64;
            if q > 1.0 && n < q {
                se2 *= (q - n) / (q - 1.0);
            } else {
                se2 = 0.0;
            }
        }
        Estimate {
            value: mean,
            std_err: se2.sqrt(),
            n: self.n,
        }
    }

    /// The full density map, row-major (`iy * nx + ix`).
    pub fn density_map(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.nx * self.ny];
        }
        self.sum.iter().map(|s| s / self.n as f64).collect()
    }

    /// Mean absolute per-cell difference to another map (used to measure
    /// online convergence against the exact density).
    pub fn l1_distance(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.nx * self.ny);
        let map = self.density_map();
        let total: f64 = map.iter().zip(reference).map(|(a, b)| (a - b).abs()).sum();
        total / map.len() as f64
    }

    /// Computes the exact density map for a full result set (ground truth
    /// for experiments).
    pub fn exact_map(
        bounds: Rect2,
        nx: usize,
        ny: usize,
        kernel: Kernel,
        points: &[Point2],
    ) -> Vec<f64> {
        let mut kde = KdeEstimator::new(bounds, nx, ny, kernel);
        for p in points {
            kde.push(p);
        }
        kde.density_map()
    }
}

/// Clamped cell-index window `[lo, hi]` covering `center ± radius`.
fn index_window(v: f64, lo: f64, cell: f64, radius: f64, n: usize) -> (usize, usize) {
    let first = ((v - radius - lo) / cell).floor().max(0.0) as usize;
    let last = ((v + radius - lo) / cell).ceil().max(0.0) as usize;
    (first.min(n - 1), last.min(n - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Rect2 {
        Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(1.0, 1.0))
    }

    #[test]
    fn kernels_are_normalised_enough() {
        // Numeric integral of each kernel over the plane ≈ 1.
        for kernel in [
            Kernel::Gaussian { bandwidth: 0.1 },
            Kernel::Epanechnikov { bandwidth: 0.1 },
        ] {
            let step = 0.002;
            let mut total = 0.0;
            let r = kernel.support_radius() * 1.5;
            let cells = (2.0 * r / step) as i64;
            for i in 0..cells {
                for j in 0..cells {
                    let x = -r + i as f64 * step;
                    let y = -r + j as f64 * step;
                    total += kernel.eval((x * x + y * y).sqrt()) * step * step;
                }
            }
            assert!(
                (total - 1.0).abs() < 0.02,
                "{kernel:?} integrates to {total}"
            );
        }
    }

    #[test]
    fn epanechnikov_has_compact_support() {
        let k = Kernel::Epanechnikov { bandwidth: 0.5 };
        assert_eq!(k.eval(0.5), 0.0);
        assert_eq!(k.eval(1.0), 0.0);
        assert!(k.eval(0.49) > 0.0);
    }

    #[test]
    fn density_concentrates_where_samples_are() {
        let mut kde =
            KdeEstimator::new(unit_bounds(), 16, 16, Kernel::Gaussian { bandwidth: 0.05 });
        for i in 0..500 {
            // Cluster near (0.25, 0.25).
            let jitter = (i % 10) as f64 * 0.004;
            kde.push(&Point2::xy(0.25 + jitter, 0.25 - jitter));
        }
        let map = kde.density_map();
        let near = map[4 * 16 + 4]; // cell containing (0.28, 0.28)
        let far = map[12 * 16 + 12];
        assert!(near > far * 10.0, "near {near} far {far}");
    }

    #[test]
    fn online_map_converges_to_exact_map() {
        // Ground truth over 2000 points; sampling prefixes must approach it.
        let points: Vec<Point2> = (0..2000)
            .map(|i| {
                let t = i as f64 / 2000.0;
                Point2::xy(0.5 + 0.3 * (t * 37.0).sin(), 0.5 + 0.3 * (t * 53.0).cos())
            })
            .collect();
        let kernel = Kernel::Epanechnikov { bandwidth: 0.15 };
        let exact = KdeEstimator::exact_map(unit_bounds(), 12, 12, kernel, &points);
        // "Sample" = deterministic shuffled order.
        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut s = 12345u64;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut kde = KdeEstimator::new(unit_bounds(), 12, 12, kernel);
        let mut errs = Vec::new();
        for (cnt, &i) in order.iter().enumerate() {
            kde.push(&points[i]);
            if [50, 200, 1000].contains(&(cnt + 1)) {
                errs.push(kde.l1_distance(&exact));
            }
        }
        assert!(errs[0] > errs[2], "error must shrink: {errs:?}");
        assert!(errs[2] < 0.05 * exact.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn per_cell_intervals_tighten() {
        let mut kde = KdeEstimator::new(unit_bounds(), 8, 8, Kernel::Gaussian { bandwidth: 0.2 })
            .with_population(10_000);
        let mut widths = Vec::new();
        for i in 0..400 {
            let t = i as f64 * 0.618;
            kde.push(&Point2::xy(t.fract(), (t * 1.37).fract()));
            if i == 20 || i == 399 {
                widths.push(kde.cell_estimate(4, 4).half_width(0.95));
            }
        }
        assert!(widths[1] < widths[0], "{widths:?}");
    }

    #[test]
    fn scott_rule_shrinks_with_n() {
        assert!(scott_bandwidth(100, 1.0) > scott_bandwidth(100_000, 1.0));
        assert!(scott_bandwidth(100, 2.0) > scott_bandwidth(100, 1.0));
    }

    #[test]
    fn zero_samples_give_zero_map() {
        let kde = KdeEstimator::new(unit_bounds(), 4, 4, Kernel::Gaussian { bandwidth: 0.1 });
        assert!(kde.density_map().iter().all(|&v| v == 0.0));
        assert_eq!(kde.cell_estimate(0, 0).n, 0);
    }
}
