//! Online estimators for STORM.
//!
//! Spatial online aggregation is "a direct product of spatial online
//! sampling" (paper §2): unbiased estimators, tailored to each analytical
//! query, are built over the online sample stream, and their confidence
//! intervals tighten as samples keep arriving. This crate provides the
//! paper's feature module:
//!
//! * [`OnlineStat`] / [`Estimate`] — running mean/variance (Welford) with
//!   CLT confidence intervals and finite-population correction for
//!   without-replacement streams — the machinery behind `AVG`, `SUM`,
//!   `COUNT` (paper §3.2's `E[X̄] = µ` discussion);
//! * [`kde::KdeEstimator`] — online kernel density estimation over a grid,
//!   each cell an average with its own confidence interval (Figure 5);
//! * [`cluster::OnlineKMeans`] — spatial clustering over samples;
//! * [`text::SpaceSaving`] + [`text::tokenize`] — online short-text term
//!   analysis (Figure 6(b));
//! * [`trajectory::TrajectoryBuilder`] — online approximate trajectory
//!   reconstruction (Figure 6(a));
//! * [`quantile::QuantileEstimator`] — online quantiles with
//!   distribution-free order-statistic intervals (`MEDIAN`/`QUANTILE`);
//! * [`groupby::GroupedMeans`] — per-group online aggregates;
//! * [`stats`] — the underlying normal-distribution helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod groupby;
pub mod kde;
mod online;
pub mod quantile;
pub mod stats;
pub mod text;
pub mod trajectory;

pub use online::{Estimate, OnlineStat, Population};
