//! Online quantile estimation with distribution-free confidence intervals.
//!
//! Beyond `SUM`/`AVG`, online aggregation classically supports quantiles:
//! the sample `p`-quantile estimates the population `p`-quantile, and the
//! binomial distribution of "how many samples fall below the true
//! quantile" gives an exact, distribution-free confidence interval from
//! order statistics — no variance estimation needed. This powers the
//! `MEDIAN`/`QUANTILE` verbs of STORM-QL.

use crate::online::Estimate;
use crate::stats::z_value;

/// An online estimator of the population `p`-quantile.
///
/// Keeps the samples (sorting lazily on inspection); memory is `O(k)`,
/// which matches the online-aggregation setting where `k ≪ N`.
#[derive(Debug, Clone)]
pub struct QuantileEstimator {
    p: f64,
    values: Vec<f64>,
    sorted: bool,
}

impl QuantileEstimator {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile p must be in (0,1), got {p}");
        QuantileEstimator {
            p,
            values: Vec::new(),
            sorted: true,
        }
    }

    /// The median (`p = 0.5`).
    pub fn median() -> Self {
        QuantileEstimator::new(0.5)
    }

    /// The target quantile level.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of samples so far.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// Feeds one observation (NaN values are ignored — they have no order).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        // Stay lazily sorted: only clear the flag when order is broken.
        if self.sorted && self.values.last().is_some_and(|&last| x < last) {
            self.sorted = false;
        }
        self.values.push(x);
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // pdqsort is near-linear on the mostly-sorted runs this
            // work load produces.
            self.values.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The current point estimate (`None` before any data).
    pub fn quantile(&mut self) -> Option<f64> {
        self.ensure_sorted();
        if self.values.is_empty() {
            return None;
        }
        let idx = ((self.values.len() as f64 - 1.0) * self.p).round() as usize;
        Some(self.values[idx.min(self.values.len() - 1)])
    }

    /// A `confidence`-level interval from order statistics: the number of
    /// samples below the true quantile is Binomial(k, p), so
    /// `[X_(l), X_(u)]` with `l,u = k·p ∓ z·√(k·p·(1−p))` covers it with
    /// the requested probability (normal approximation of the binomial).
    pub fn ci(&mut self, confidence: f64) -> Option<(f64, f64)> {
        self.ensure_sorted();
        let k = self.values.len();
        if k < 2 {
            return None;
        }
        let z = z_value(confidence);
        let kp = k as f64 * self.p;
        let spread = z * (k as f64 * self.p * (1.0 - self.p)).sqrt();
        let lo = (kp - spread).floor().max(0.0) as usize;
        let hi = ((kp + spread).ceil() as usize).min(k - 1);
        Some((self.values[lo.min(k - 1)], self.values[hi]))
    }

    /// An [`Estimate`] view: the point estimate with a pseudo standard
    /// error derived from the CI width (`(hi − lo) / 2z`), so quantile
    /// queries plug into the same termination machinery as means.
    pub fn estimate(&mut self, confidence: f64) -> Estimate {
        let n = self.n() as u64;
        let value = self.quantile().unwrap_or(0.0);
        let std_err = match self.ci(confidence) {
            Some((lo, hi)) => (hi - lo) / (2.0 * z_value(confidence)),
            None => f64::INFINITY,
        };
        Estimate { value, std_err, n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "quantile p")]
    fn rejects_degenerate_p() {
        QuantileEstimator::new(1.0);
    }

    #[test]
    fn median_of_known_sequence() {
        let mut q = QuantileEstimator::median();
        for x in [5.0, 1.0, 9.0, 3.0, 7.0] {
            q.push(x);
        }
        assert_eq!(q.quantile(), Some(5.0));
        assert_eq!(q.n(), 5);
    }

    #[test]
    fn extreme_quantiles() {
        let mut q10 = QuantileEstimator::new(0.1);
        let mut q90 = QuantileEstimator::new(0.9);
        for i in 0..1000 {
            q10.push(i as f64);
            q90.push(i as f64);
        }
        assert!((q10.quantile().unwrap() - 100.0).abs() < 5.0);
        assert!((q90.quantile().unwrap() - 900.0).abs() < 5.0);
    }

    #[test]
    fn nan_is_ignored() {
        let mut q = QuantileEstimator::median();
        q.push(1.0);
        q.push(f64::NAN);
        q.push(3.0);
        assert_eq!(q.n(), 2);
        assert!(q.quantile().unwrap().is_finite());
    }

    #[test]
    fn empty_estimator_is_honest() {
        let mut q = QuantileEstimator::median();
        assert!(q.quantile().is_none());
        assert!(q.ci(0.95).is_none());
        assert_eq!(q.estimate(0.95).std_err, f64::INFINITY);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut widths = Vec::new();
        let mut q = QuantileEstimator::median();
        let mut lcg = 1u64;
        for i in 1..=10_000 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.push((lcg >> 33) as f64 / (1u64 << 31) as f64);
            if i == 100 || i == 10_000 {
                let (lo, hi) = q.ci(0.95).unwrap();
                widths.push(hi - lo);
            }
        }
        assert!(widths[1] < widths[0] / 3.0, "{widths:?}");
    }

    #[test]
    fn ci_coverage_is_near_nominal() {
        // True median of Uniform(0,1) is 0.5; ~95% of 95% CIs must cover.
        let mut lcg = 99u64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as f64 / (1u64 << 31) as f64
        };
        let trials = 500;
        let mut covered = 0;
        for _ in 0..trials {
            let mut q = QuantileEstimator::median();
            for _ in 0..200 {
                q.push(next());
            }
            let (lo, hi) = q.ci(0.95).unwrap();
            if lo <= 0.5 && 0.5 <= hi {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.90..=0.99).contains(&rate), "coverage = {rate}");
    }

    #[test]
    fn unsorted_pushes_are_handled_lazily() {
        let mut q = QuantileEstimator::new(0.25);
        for i in (0..100).rev() {
            q.push(i as f64);
        }
        assert!((q.quantile().unwrap() - 25.0).abs() <= 1.0);
        // Push after sorting stays correct.
        q.push(-100.0);
        assert!(q.quantile().unwrap() < 25.0);
    }
}
