//! Online short-text understanding (the Figure 6(b) estimator).
//!
//! STORM's demo runs a "short-text understanding online estimator" over
//! sampled tweets in a spatio-temporal window — during the February 2014
//! Atlanta snowstorm it surfaces *snow, ice, outage, …* as the dominant
//! terms. The online primitive behind it is heavy-hitter tracking over the
//! token stream of the sampled texts, implemented here with the
//! SpaceSaving summary (Metwally et al.), which guarantees every term with
//! true frequency above `n/capacity` is retained.

use std::collections::BTreeMap;

/// English stop words filtered out of term statistics.
const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "i", "if", "in", "is", "it", "its", "just", "me", "my", "no", "not", "of",
    "on", "or", "our", "she", "so", "that", "the", "their", "them", "then", "there", "they",
    "this", "to", "was", "we", "were", "what", "when", "who", "will", "with", "you", "your", "rt",
    "im", "dont", "get", "got", "going", "one", "up", "out", "all", "can", "do", "about", "now",
    "like",
];

/// Splits a short text into lowercase alphanumeric tokens, dropping stop
/// words and single characters.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '\'')
        .map(|w| w.trim_matches('\'').to_lowercase())
        .filter(|w| w.len() > 1 && !STOP_WORDS.contains(&w.as_str()))
        .collect()
}

/// One tracked heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The term.
    pub term: String,
    /// Estimated count (an overestimate by at most `error`).
    pub count: u64,
    /// Maximum overestimation.
    pub error: u64,
}

/// The SpaceSaving heavy-hitters summary.
///
/// Tracks at most `capacity` terms; any term whose true frequency exceeds
/// `n / capacity` is guaranteed to be present, and every reported count
/// overestimates the truth by at most the reported `error`.
///
/// The counters are a `BTreeMap` rather than a `HashMap`: eviction breaks
/// count ties by iteration order, and term-ordered iteration makes that
/// tie-break (and with it the whole summary) deterministic under seed,
/// where RandomState ordering would differ run to run (storm-analyzer A2).
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// term → (count, error)
    counters: BTreeMap<String, (u64, u64)>,
    n: u64,
}

impl SpaceSaving {
    /// Creates a summary tracking up to `capacity` terms.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counters: BTreeMap::new(),
            n: 0,
        }
    }

    /// Total tokens observed.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Observes one token.
    pub fn push(&mut self, term: &str) {
        self.n += 1;
        if let Some(entry) = self.counters.get_mut(term) {
            entry.0 += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(term.to_owned(), (1, 0));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // both value and error bound. Count ties evict the
        // lexicographically smallest term (BTreeMap iteration order, and
        // min_by_key keeps the first minimum) — any run replays identically.
        let (min_term, min_count) = self
            .counters
            .iter()
            .min_by_key(|(_, (c, _))| *c)
            .map(|(t, (c, _))| (t.clone(), *c))
            .expect("counters non-empty at capacity");
        self.counters.remove(&min_term);
        self.counters
            .insert(term.to_owned(), (min_count + 1, min_count));
    }

    /// Observes every token of a text.
    pub fn push_text(&mut self, text: &str) {
        for token in tokenize(text) {
            self.push(&token);
        }
    }

    /// The top `k` terms by estimated count, descending.
    pub fn top(&self, k: usize) -> Vec<HeavyHitter> {
        let mut items: Vec<HeavyHitter> = self
            .counters
            .iter()
            .map(|(t, &(count, error))| HeavyHitter {
                term: t.clone(),
                count,
                error,
            })
            .collect();
        items.sort_by(|a, b| b.count.cmp(&a.count).then(a.term.cmp(&b.term)));
        items.truncate(k);
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tokenizer_lowercases_and_filters() {
        let toks = tokenize("The SNOW is falling, the ice-storm's power outage!!");
        assert_eq!(
            toks,
            vec!["snow", "falling", "ice", "storm's", "power", "outage"]
        );
    }

    #[test]
    fn tokenizer_drops_short_and_stop_words() {
        assert!(tokenize("I a x to the of").is_empty());
    }

    #[test]
    fn exact_counts_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.push("snow");
        }
        for _ in 0..3 {
            ss.push("ice");
        }
        ss.push("cold");
        let top = ss.top(3);
        assert_eq!(top[0].term, "snow");
        assert_eq!(top[0].count, 5);
        assert_eq!(top[0].error, 0);
        assert_eq!(top[1].term, "ice");
        assert_eq!(top[2].term, "cold");
    }

    #[test]
    fn heavy_hitters_survive_eviction_noise() {
        let mut ss = SpaceSaving::new(20);
        // 3 heavy terms amid a long tail of distinct noise terms.
        for i in 0..3000usize {
            match i % 10 {
                0..=3 => ss.push("snow"),
                4..=6 => ss.push("ice"),
                7 => ss.push("outage"),
                _ => ss.push(&format!("noise{i}")),
            }
        }
        let top: Vec<String> = ss.top(3).into_iter().map(|h| h.term).collect();
        assert_eq!(top, vec!["snow", "ice", "outage"]);
    }

    #[test]
    fn counts_never_underestimate() {
        // SpaceSaving invariant: reported count >= true count.
        let mut ss = SpaceSaving::new(4);
        let stream = ["a1", "b1", "a1", "c1", "d1", "e1", "a1", "f1", "a1"];
        let mut truth: HashMap<&str, u64> = HashMap::new();
        for t in stream {
            ss.push(t);
            *truth.entry(t).or_default() += 1;
        }
        for h in ss.top(10) {
            let t = truth.get(h.term.as_str()).copied().unwrap_or(0);
            assert!(h.count >= t, "{}: {} < {t}", h.term, h.count);
            assert!(h.count - h.error <= t, "{}: lower bound broken", h.term);
        }
    }

    #[test]
    fn eviction_tie_break_is_deterministic() {
        // At capacity, every counter ties at count 1; the eviction victim
        // must be the lexicographically smallest term, not whichever a
        // RandomState iteration happened to visit first.
        let mut ss = SpaceSaving::new(3);
        for t in ["mm", "zz", "aa", "new"] {
            ss.push(t);
        }
        let terms: Vec<String> = ss.top(10).into_iter().map(|h| h.term).collect();
        assert!(!terms.contains(&"aa".to_string()), "{terms:?}");
        assert!(terms.contains(&"new".to_string()), "{terms:?}");
    }

    #[test]
    fn push_text_integrates_tokenizer() {
        let mut ss = SpaceSaving::new(50);
        ss.push_text("Snow snow SNOW in Atlanta");
        assert_eq!(ss.top(1)[0].term, "snow");
        assert_eq!(ss.top(1)[0].count, 3);
    }
}
