//! Per-group online aggregates.
//!
//! Online aggregation literature extends single aggregates to group-by
//! estimates (Xu et al. [19], cited in the paper's related work); STORM's
//! feature module exposes the same capability over spatial samples — e.g.
//! "average temperature per station network" within a region.

use std::collections::HashMap;
use std::hash::Hash;

use crate::online::{Estimate, OnlineStat};

/// Running per-group means with confidence intervals.
///
/// Groups live in a `Vec` in first-seen order, with the `HashMap` serving
/// only as a key → slot index (lookups never iterate it): `estimates()`
/// must list equal-sized groups in a stable order, or two runs of the same
/// seeded sampling session would disagree on the result — exactly the
/// replay break storm-analyzer's A2 pass exists to catch.
#[derive(Debug, Clone)]
pub struct GroupedMeans<K: Eq + Hash> {
    index: HashMap<K, usize>,
    stats: Vec<(K, OnlineStat)>,
    n: u64,
}

impl<K: Eq + Hash> Default for GroupedMeans<K> {
    fn default() -> Self {
        GroupedMeans {
            index: HashMap::new(),
            stats: Vec::new(),
            n: 0,
        }
    }
}

impl<K: Eq + Hash + Clone> GroupedMeans<K> {
    /// Creates an empty group-by accumulator.
    pub fn new() -> Self {
        GroupedMeans::default()
    }

    /// Feeds one observation for `key`.
    pub fn push(&mut self, key: K, value: f64) {
        self.n += 1;
        let slot = *self.index.entry(key.clone()).or_insert_with(|| {
            self.stats.push((key, OnlineStat::default()));
            self.stats.len() - 1
        });
        self.stats[slot].1.push(value);
    }

    /// Total observations across all groups.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of groups seen.
    pub fn num_groups(&self) -> usize {
        self.stats.len()
    }

    /// The current estimate for one group.
    pub fn estimate(&self, key: &K) -> Option<Estimate> {
        let slot = *self.index.get(key)?;
        Some(self.stats[slot].1.mean_estimate())
    }

    /// All `(key, estimate)` pairs, largest groups first; equal-sized
    /// groups tie-break by first appearance (stable sort over the
    /// insertion-ordered `Vec`), so output is deterministic under seed.
    pub fn estimates(&self) -> Vec<(K, Estimate)> {
        let mut out: Vec<(K, Estimate)> = self
            .stats
            .iter()
            .map(|(k, s)| (k.clone(), s.mean_estimate()))
            .collect();
        out.sort_by_key(|entry| std::cmp::Reverse(entry.1.n));
        out
    }

    /// Estimated fraction of the population in each group (the group's
    /// share of the samples — itself an unbiased proportion estimator).
    pub fn share(&self, key: &K) -> Option<f64> {
        let slot = *self.index.get(key)?;
        Some(self.stats[slot].1.n() as f64 / self.n.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_accumulate_independently() {
        let mut g: GroupedMeans<&str> = GroupedMeans::new();
        for i in 0..100 {
            g.push("a", 10.0 + (i % 3) as f64);
            if i % 2 == 0 {
                g.push("b", 50.0);
            }
        }
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.n(), 150);
        let a = g.estimate(&"a").unwrap();
        assert!((a.value - 11.0).abs() < 0.1);
        let b = g.estimate(&"b").unwrap();
        assert_eq!(b.value, 50.0);
        assert!(g.estimate(&"missing").is_none());
    }

    #[test]
    fn estimates_sorted_by_group_size() {
        let mut g: GroupedMeans<u32> = GroupedMeans::new();
        for _ in 0..5 {
            g.push(1, 1.0);
        }
        for _ in 0..20 {
            g.push(2, 2.0);
        }
        let est = g.estimates();
        assert_eq!(est[0].0, 2);
        assert_eq!(est[1].0, 1);
    }

    #[test]
    fn equal_sized_groups_keep_first_seen_order() {
        // The replay-determinism contract: ties in group size must not
        // depend on hash iteration order.
        let mut g: GroupedMeans<u32> = GroupedMeans::new();
        for key in [7, 3, 9, 1, 5] {
            g.push(key, f64::from(key));
        }
        let keys: Vec<u32> = g.estimates().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![7, 3, 9, 1, 5]);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut g: GroupedMeans<char> = GroupedMeans::new();
        for i in 0..90 {
            g.push(['x', 'y', 'z'][i % 3], i as f64);
        }
        let total: f64 = ['x', 'y', 'z'].iter().map(|k| g.share(k).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((g.share(&'x').unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }
}
