//! Normal-distribution helpers (no external stats dependency).

/// The error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5e-7 — ample for confidence intervals).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF) via Acklam's algorithm
/// (relative error < 1.15e-9).
///
/// # Panics
/// Panics when `p` is not in `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Two-sided critical value: `z` such that `P(|Z| <= z) = confidence`.
///
/// `z_value(0.95) ≈ 1.96`, the constant behind the paper's "95% confidence"
/// reports.
pub fn z_value(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    normal_quantile(0.5 + confidence / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry() {
        for x in [-2.5, -1.0, 0.0, 0.3, 1.7] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn z_values_match_tables() {
        assert!((z_value(0.95) - 1.959_964).abs() < 1e-4);
        assert!((z_value(0.99) - 2.575_829).abs() < 1e-4);
        assert!((z_value(0.90) - 1.644_854).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn z_rejects_bad_confidence() {
        z_value(1.0);
    }
}
