//! Running aggregates with confidence intervals.

use crate::stats::z_value;

/// What the sample was drawn from, which determines the variance formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Population {
    /// With-replacement (or effectively infinite population): the plain
    /// CLT standard error `σ/√k`.
    #[default]
    Infinite,
    /// Without replacement from a population of known size `q`: the finite
    /// population correction `√((q-k)/(q-1))` shrinks the interval, and the
    /// error hits exactly zero once every point has been seen — the paper's
    /// "quality improves continuously over time until the exact result is
    /// obtained in the end".
    Finite(usize),
}

/// A point estimate with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated value.
    pub value: f64,
    /// Standard error of the estimate (0 when exact).
    pub std_err: f64,
    /// Number of samples the estimate is based on.
    pub n: u64,
}

impl Estimate {
    /// The `confidence`-level interval half-width (`z · std_err`).
    pub fn half_width(&self, confidence: f64) -> f64 {
        z_value(confidence) * self.std_err
    }

    /// The `confidence`-level interval `(lo, hi)`.
    pub fn ci(&self, confidence: f64) -> (f64, f64) {
        let h = self.half_width(confidence);
        (self.value - h, self.value + h)
    }

    /// Relative half-width (`half_width / |value|`); infinite when the
    /// value is zero. The query-termination criterion "stop when the
    /// relative error at 95% confidence drops below ε" uses this.
    pub fn relative_error(&self, confidence: f64) -> f64 {
        // storm-lint: allow(R3): 0.0 is an exact sentinel (no samples), never computed
        if self.value == 0.0 {
            // storm-lint: allow(R3): same sentinel — an all-zero stream has exact zero SE
            if self.std_err == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width(confidence) / self.value.abs()
        }
    }
}

/// Welford running mean/variance over an online sample stream.
///
/// The sample mean is an unbiased estimator of the population mean
/// (paper §3.2), and by the CLT `X̄ − µ → Normal(0, σ²/k)`, so the
/// reported standard error shrinks as `1/√k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStat {
    n: u64,
    mean: f64,
    m2: f64,
    population: Population,
    /// Fraction `φ` of the declared population lost to dead shards
    /// (degraded execution); widens the reported error. See
    /// [`OnlineStat::set_missing_mass`].
    missing_mass: f64,
}

impl OnlineStat {
    /// A fresh accumulator for a with-replacement / infinite stream.
    pub fn new() -> Self {
        OnlineStat::default()
    }

    /// A fresh accumulator for a without-replacement stream over a
    /// population of exactly `q` points.
    pub fn without_replacement(q: usize) -> Self {
        OnlineStat {
            population: Population::Finite(q),
            ..Default::default()
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The running sample mean (0 before any data).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`None` with fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Declares that a fraction `phi ∈ [0, 1]` of the declared population
    /// became unobservable (shards written off mid-query). The reported
    /// standard error is widened by the missing-mass bound
    /// `se' = (se + φ·s) / (1 − φ)` where `s` is the sample standard
    /// deviation: the unobserved mass is conservatively allowed to shift
    /// the true mean by up to one observed spread, and the whole interval
    /// is inflated by the unobserved fraction. `φ = 0` is an exact no-op;
    /// `φ = 1` (everything lost) reports infinite error. Derivation in
    /// DESIGN.md §9.
    pub fn set_missing_mass(&mut self, phi: f64) {
        self.missing_mass = phi.clamp(0.0, 1.0);
    }

    /// The declared unobservable fraction `φ` (0 for a clean stream).
    pub fn missing_mass(&self) -> f64 {
        self.missing_mass
    }

    /// Standard error of the mean, including the finite-population
    /// correction when applicable and the missing-mass widening when a
    /// degraded stream declared lost mass.
    pub fn std_err(&self) -> Option<f64> {
        let var = self.variance()?;
        let mut se2 = var / self.n as f64;
        if let Population::Finite(q) = self.population {
            let q = q as f64;
            let k = self.n as f64;
            if q <= 1.0 || k >= q {
                se2 = 0.0;
            } else {
                se2 *= (q - k) / (q - 1.0);
            }
        }
        let se = se2.sqrt();
        let phi = self.missing_mass;
        if phi <= 0.0 {
            return Some(se);
        }
        if phi >= 1.0 {
            return Some(f64::INFINITY);
        }
        Some((se + phi * var.sqrt()) / (1.0 - phi))
    }

    /// The current estimate of the population **mean**.
    ///
    /// With fewer than 2 samples the standard error is unknown; it is
    /// reported as infinite so no termination criterion can fire early.
    pub fn mean_estimate(&self) -> Estimate {
        Estimate {
            value: self.mean,
            std_err: self.std_err().unwrap_or(f64::INFINITY),
            n: self.n,
        }
    }

    /// The current estimate of the population **sum**, `q · X̄`, available
    /// when the population size `q` is known (from the sampler's canonical
    /// count). Its standard error scales accordingly.
    pub fn sum_estimate(&self, q: usize) -> Estimate {
        let scale = q as f64;
        let base = self.mean_estimate();
        Estimate {
            value: scale * base.value,
            std_err: scale * base.std_err,
            n: self.n,
        }
    }

    /// Merges another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &OnlineStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        // Degradation is a stream-level property; keep the worst declared.
        self.missing_mass = self.missing_mass.max(other.missing_mass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStat::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Two-pass sample variance = 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_samples_give_unknown_error() {
        let mut s = OnlineStat::new();
        assert!(s.variance().is_none());
        s.push(1.0);
        assert!(s.std_err().is_none());
        assert_eq!(s.mean_estimate().std_err, f64::INFINITY);
        s.push(3.0);
        assert!(s.std_err().is_some());
    }

    #[test]
    fn fpc_shrinks_error_and_hits_zero_at_exhaustion() {
        let q = 10;
        let mut wr = OnlineStat::new();
        let mut wor = OnlineStat::without_replacement(q);
        for i in 0..q {
            let x = i as f64;
            wr.push(x);
            wor.push(x);
        }
        assert!(wor.std_err().unwrap() < wr.std_err().unwrap());
        assert_eq!(wor.std_err().unwrap(), 0.0, "all q points consumed");
    }

    #[test]
    fn ci_widths_use_the_right_z() {
        let mut s = OnlineStat::new();
        for i in 0..100 {
            s.push((i % 10) as f64);
        }
        let est = s.mean_estimate();
        let (lo, hi) = est.ci(0.95);
        assert!((hi - lo - 2.0 * 1.959_964 * est.std_err).abs() < 1e-6);
        assert!(lo < est.value && est.value < hi);
        // Wider confidence → wider interval.
        assert!(est.half_width(0.99) > est.half_width(0.95));
    }

    #[test]
    fn sum_estimate_scales_by_population() {
        let mut s = OnlineStat::without_replacement(1000);
        for i in 0..50 {
            s.push(10.0 + (i % 5) as f64);
        }
        let mean = s.mean_estimate();
        let sum = s.sum_estimate(1000);
        assert!((sum.value - 1000.0 * mean.value).abs() < 1e-9);
        assert!((sum.std_err - 1000.0 * mean.std_err).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| ((i * 37) % 23) as f64).collect();
        let mut all = OnlineStat::new();
        for &x in &xs {
            all.push(x);
        }
        let (left, right) = xs.split_at(20);
        let mut a = OnlineStat::new();
        let mut b = OnlineStat::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.n(), all.n());
    }

    #[test]
    fn relative_error_semantics() {
        let est = Estimate {
            value: 100.0,
            std_err: 5.0,
            n: 10,
        };
        assert!((est.relative_error(0.95) - 1.959_964 * 5.0 / 100.0).abs() < 1e-6);
        let zero = Estimate {
            value: 0.0,
            std_err: 1.0,
            n: 10,
        };
        assert!(zero.relative_error(0.95).is_infinite());
        let exact_zero = Estimate {
            value: 0.0,
            std_err: 0.0,
            n: 10,
        };
        assert_eq!(exact_zero.relative_error(0.95), 0.0);
    }

    #[test]
    fn missing_mass_widens_monotonically_and_zero_is_exact() {
        let mut base = OnlineStat::new();
        for i in 0..100 {
            base.push((i % 13) as f64);
        }
        let clean = base.std_err().unwrap();
        let mut zero = base;
        zero.set_missing_mass(0.0);
        assert_eq!(zero.std_err().unwrap(), clean, "φ = 0 must be a no-op");
        let mut prev = clean;
        for phi in [0.05, 0.1, 0.25, 0.5, 0.9] {
            let mut s = base;
            s.set_missing_mass(phi);
            let widened = s.std_err().unwrap();
            assert!(
                widened > prev,
                "φ = {phi} did not widen ({widened} <= {prev})"
            );
            prev = widened;
        }
        let mut all_lost = base;
        all_lost.set_missing_mass(1.0);
        assert!(all_lost.std_err().unwrap().is_infinite());
    }

    #[test]
    fn degraded_exhaustion_keeps_nonzero_error() {
        // A WOR stream that exhausted its *surviving* shards is not exact
        // when mass went missing: the FPC zero must not silence φ.
        let q = 10;
        let mut s = OnlineStat::without_replacement(q);
        for i in 0..q {
            s.push(i as f64);
        }
        assert_eq!(s.std_err().unwrap(), 0.0);
        s.set_missing_mass(0.2);
        let widened = s.std_err().unwrap();
        assert!(
            widened > 0.0,
            "degraded exact-looking stream reported 0 error"
        );
        // se' = (0 + φ·s) / (1 − φ)
        let expect = 0.2 * s.std_dev().unwrap() / 0.8;
        assert!((widened - expect).abs() < 1e-12);
    }

    #[test]
    fn merge_keeps_worst_missing_mass() {
        let mut a = OnlineStat::new();
        let mut b = OnlineStat::new();
        for i in 0..10 {
            a.push(i as f64);
            b.push((i * 2) as f64);
        }
        b.set_missing_mass(0.3);
        a.merge(&b);
        assert!((a.missing_mass() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ci_coverage_is_near_nominal() {
        // Simulation: sample means of a known population; ~95% of the 95%
        // intervals must cover the true mean. Deterministic LCG sampling.
        let population: Vec<f64> = (0..10_000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let true_mean = population.iter().sum::<f64>() / population.len() as f64;
        let mut lcg: u64 = 42;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        let trials = 1000;
        let mut covered = 0;
        for _ in 0..trials {
            let mut s = OnlineStat::new();
            for _ in 0..100 {
                s.push(population[next() % population.len()]);
            }
            let (lo, hi) = s.mean_estimate().ci(0.95);
            if lo <= true_mean && true_mean <= hi {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.92..=0.98).contains(&rate), "coverage = {rate}");
    }
}
