//! Online approximate trajectory reconstruction (the Figure 6(a)
//! estimator).
//!
//! STORM's demo builds "an online, approximate trajectory using spatial
//! online samples for a given twitter user for a specified time range".
//! Each sampled (location, timestamp) pair refines a piecewise-linear
//! estimate of the user's path; the approximation error against the true
//! path shrinks as more of the user's points are sampled.

use storm_geo::{Point2, StPoint};

/// An online piecewise-linear trajectory estimate.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryBuilder {
    /// Waypoints kept sorted by timestamp.
    points: Vec<StPoint>,
}

impl TrajectoryBuilder {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        TrajectoryBuilder::default()
    }

    /// Number of waypoints so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no waypoints have arrived.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds one sampled (location, time) observation, keeping time order.
    pub fn push(&mut self, p: StPoint) {
        let idx = self.points.partition_point(|q| q.t <= p.t);
        self.points.insert(idx, p);
    }

    /// The waypoints in time order.
    pub fn waypoints(&self) -> &[StPoint] {
        &self.points
    }

    /// The estimated position at time `t`: linear interpolation between the
    /// surrounding waypoints, clamped to the ends. `None` while empty.
    pub fn position_at(&self, t: i64) -> Option<Point2> {
        let (first, last) = (self.points.first()?, self.points.last()?);
        if t <= first.t {
            return Some(first.xy);
        }
        if t >= last.t {
            return Some(last.xy);
        }
        let idx = self.points.partition_point(|q| q.t <= t);
        let (a, b) = (&self.points[idx - 1], &self.points[idx]);
        if b.t == a.t {
            return Some(b.xy);
        }
        let f = (t - a.t) as f64 / (b.t - a.t) as f64;
        Some(a.xy.lerp(&b.xy, f))
    }

    /// Total path length of the reconstruction.
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].xy.dist(&w[1].xy)).sum()
    }

    /// Mean distance between this reconstruction and a reference
    /// trajectory, evaluated at `steps` evenly spaced times across
    /// `[t0, t1]` — the convergence metric for experiment E4.
    pub fn mean_deviation(
        &self,
        reference: &TrajectoryBuilder,
        t0: i64,
        t1: i64,
        steps: usize,
    ) -> Option<f64> {
        if steps == 0 || t1 <= t0 {
            return None;
        }
        let mut total = 0.0;
        for i in 0..steps {
            let t = t0 + ((t1 - t0) as f64 * i as f64 / (steps - 1).max(1) as f64) as i64;
            let a = self.position_at(t)?;
            let b = reference.position_at(t)?;
            total += a.dist(&b);
        }
        Some(total / steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(n: usize) -> TrajectoryBuilder {
        // x = t/10, y = 0 for t in 0..100
        let mut t = TrajectoryBuilder::new();
        for i in 0..n {
            let ts = (i * 100 / (n - 1).max(1)) as i64;
            t.push(StPoint::new(ts as f64 / 10.0, 0.0, ts));
        }
        t
    }

    #[test]
    fn push_keeps_time_order_regardless_of_arrival() {
        let mut t = TrajectoryBuilder::new();
        for &ts in &[50i64, 10, 90, 30, 70] {
            t.push(StPoint::new(ts as f64, 0.0, ts));
        }
        let times: Vec<i64> = t.waypoints().iter().map(|p| p.t).collect();
        assert_eq!(times, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn interpolation_is_linear_between_waypoints() {
        let mut t = TrajectoryBuilder::new();
        t.push(StPoint::new(0.0, 0.0, 0));
        t.push(StPoint::new(10.0, 20.0, 100));
        let mid = t.position_at(50).unwrap();
        assert!((mid.x() - 5.0).abs() < 1e-12);
        assert!((mid.y() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_outside_the_observed_range() {
        let mut t = TrajectoryBuilder::new();
        t.push(StPoint::new(1.0, 2.0, 10));
        t.push(StPoint::new(3.0, 4.0, 20));
        assert_eq!(t.position_at(0).unwrap(), Point2::xy(1.0, 2.0));
        assert_eq!(t.position_at(99).unwrap(), Point2::xy(3.0, 4.0));
    }

    #[test]
    fn empty_trajectory_has_no_position() {
        let t = TrajectoryBuilder::new();
        assert!(t.position_at(0).is_none());
        assert_eq!(t.path_length(), 0.0);
    }

    #[test]
    fn duplicate_timestamps_do_not_panic() {
        let mut t = TrajectoryBuilder::new();
        t.push(StPoint::new(0.0, 0.0, 5));
        t.push(StPoint::new(9.0, 9.0, 5));
        assert!(t.position_at(5).is_some());
    }

    #[test]
    fn deviation_shrinks_with_more_samples() {
        // Reference: a sine path sampled densely.
        let mut reference = TrajectoryBuilder::new();
        for i in 0..=1000i64 {
            reference.push(StPoint::new(i as f64, (i as f64 / 50.0).sin() * 10.0, i));
        }
        // Sparse and denser reconstructions from subsets.
        let mut sparse = TrajectoryBuilder::new();
        let mut dense = TrajectoryBuilder::new();
        for i in 0..=1000i64 {
            if i % 250 == 0 {
                sparse.push(StPoint::new(i as f64, (i as f64 / 50.0).sin() * 10.0, i));
            }
            if i % 25 == 0 {
                dense.push(StPoint::new(i as f64, (i as f64 / 50.0).sin() * 10.0, i));
            }
        }
        let d_sparse = sparse.mean_deviation(&reference, 0, 1000, 200).unwrap();
        let d_dense = dense.mean_deviation(&reference, 0, 1000, 200).unwrap();
        assert!(
            d_dense < d_sparse / 2.0,
            "dense {d_dense} vs sparse {d_sparse}"
        );
    }

    #[test]
    fn path_length_of_straight_line() {
        let t = straight_line(11);
        assert!((t.path_length() - 10.0).abs() < 1e-9);
    }
}
