//! Experiment implementations for every figure of the STORM paper.
//!
//! Each `run_*` function regenerates one paper artifact (see DESIGN.md §3)
//! and returns printable rows; the `figures` binary formats them as the
//! same series the paper plots, and the Criterion benches reuse the same
//! setup code for statistically rigorous timing of the hot paths.
//!
//! Absolute numbers will differ from the paper (their testbed was a
//! MongoDB cluster over 1B+ OSM points; this is an in-process simulator) —
//! the *shapes* are what must match: who wins, by how much, where the
//! crossovers sit.

#![forbid(unsafe_code)]

use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use storm_core::{
    LsTree, QueryFirst, RandomPath, RsTree, RsTreeConfig, SampleFirst, SampleMode, SamplerKind,
    SelectorKind, SpatialSampler,
};
use storm_estimators::kde::{KdeEstimator, Kernel};
use storm_estimators::text::SpaceSaving;
use storm_estimators::trajectory::TrajectoryBuilder;
use storm_estimators::OnlineStat;
use storm_geo::{Point2, Rect2, StPoint, TimeRange};
use storm_rtree::{BulkMethod, Item, RTree, RTreeConfig};
use storm_workload::{osm, queries, tweets};

/// Standard fanout (block size `B`) for experiment trees.
pub const FANOUT: usize = 64;

/// A generic result row: a label plus named numeric columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Series / method name.
    pub label: String,
    /// `(column name, value)` pairs.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<(&'static str, f64)>) -> Self {
        Row {
            label: label.into(),
            values,
        }
    }
}

/// Renders rows as an aligned text table.
pub fn format_table(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    if rows.is_empty() {
        let _ = writeln!(out, "(no rows)");
        return out;
    }
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(5).max(6);
    let _ = write!(out, "{:<label_w$}", "series");
    for (name, _) in &rows[0].values {
        let _ = write!(out, " {name:>14}");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:<label_w$}", row.label);
        for (_, v) in &row.values {
            if v.abs() >= 1e6 || (v.abs() < 1e-3 && *v != 0.0) {
                let _ = write!(out, " {v:>14.3e}");
            } else {
                let _ = write!(out, " {v:>14.4}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// The prepared Figure-3 workload: OSM-like points indexed every way the
/// experiment needs, plus a fixed query at the requested selectivity.
pub struct Fig3Setup {
    /// The generated data.
    pub data: osm::OsmData,
    /// Plain Hilbert R-tree (RandomPath + RangeReport).
    pub plain: RTree<2>,
    /// The RS-tree.
    pub rs: RsTree<2>,
    /// The LS forest.
    pub ls: LsTree<2>,
    /// The fixed query rectangle.
    pub query: Rect2,
    /// Exact `q = |P ∩ Q|`.
    pub q: usize,
}

/// Builds the Figure-3 workload: `n` OSM-like points and a query with
/// selectivity `q_frac` (the paper fixes a query with `q = 10^9`; we fix
/// the same *relative* size, `q/N ≈ 10%`).
pub fn fig3_setup(n: usize, q_frac: f64, seed: u64) -> Fig3Setup {
    let data = osm::generate(n, seed);
    let (query, q) =
        queries::rect_with_selectivity(&data.items, q_frac, seed ^ 0xABCD).expect("non-empty");
    let plain = RTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(FANOUT),
        BulkMethod::Hilbert,
    );
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(FANOUT));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    rs.prefill(&mut rng);
    let ls = LsTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(FANOUT),
        seed ^ 0x15,
    );
    Fig3Setup {
        data,
        plain,
        rs,
        ls,
        query,
        q,
    }
}

/// The four methods of Figure 3(a) (plus SampleFirst as a bonus series).
pub const FIG3A_METHODS: &[SamplerKind] = &[
    SamplerKind::RandomPath,
    SamplerKind::RsTree,
    SamplerKind::QueryFirst,
    SamplerKind::LsTree,
    SamplerKind::SampleFirst,
];

/// Draws `k` samples with the given method; returns `(seconds, io_reads)`.
pub fn draw_k(setup: &mut Fig3Setup, method: SamplerKind, k: usize, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let io = match method {
        SamplerKind::LsTree => setup.ls.io_handle(),
        SamplerKind::RsTree => setup.rs.io_handle(),
        _ => setup.plain.io_handle(),
    };
    let before = io.reads();
    let start = Instant::now();
    let drawn = match method {
        SamplerKind::QueryFirst => {
            let mut s = QueryFirst::new(&setup.plain, &setup.query, SampleMode::WithoutReplacement);
            s.draw(k, &mut rng).len()
        }
        SamplerKind::SampleFirst => {
            let mut s = SampleFirst::new(
                &setup.data.items,
                setup.query,
                SampleMode::WithoutReplacement,
            )
            .with_io(setup.plain.io_handle());
            s.draw(k, &mut rng).len()
        }
        SamplerKind::RandomPath => {
            let mut s = RandomPath::new(&setup.plain, setup.query, SampleMode::WithoutReplacement);
            s.draw(k, &mut rng).len()
        }
        SamplerKind::LsTree => {
            let mut s = setup.ls.sampler(setup.query);
            s.draw(k, &mut rng).len()
        }
        SamplerKind::RsTree => {
            let mut s = setup
                .rs
                .sampler(setup.query, SampleMode::WithoutReplacement);
            s.draw(k, &mut rng).len()
        }
    };
    let secs = start.elapsed().as_secs_f64();
    assert!(
        drawn >= k.min(setup.q) * 9 / 10,
        "{method} drew only {drawn}/{k}"
    );
    (secs, io.reads() - before)
}

/// E1 / Figure 3(a): time and simulated I/Os to draw increasing `k`, as a
/// fraction of `q`.
pub fn run_fig3a(n: usize, fractions: &[f64], seed: u64) -> Vec<Row> {
    let mut setup = fig3_setup(n, 0.10, seed);
    let q = setup.q;
    let mut rows = Vec::new();
    for method in FIG3A_METHODS {
        for &f in fractions {
            let k = ((q as f64 * f) as usize).max(1);
            let (secs, ios) = draw_k(&mut setup, *method, k, seed ^ k as u64);
            rows.push(Row::new(
                format!("{method}"),
                vec![
                    ("k/q(%)", f * 100.0),
                    ("k", k as f64),
                    ("time(s)", secs),
                    ("sim-IOs", ios as f64),
                ],
            ));
        }
    }
    rows
}

/// E2 / Figure 3(b): relative error of `AVG(altitude)` vs elapsed time for
/// the LS-tree and RS-tree, averaged over `FIG3B_REPS` independent runs
/// (a single run's absolute error fluctuates; the paper plots the trend).
pub fn run_fig3b(n: usize, checkpoints_ms: &[f64], seed: u64) -> Vec<Row> {
    let mut setup = fig3_setup(n, 0.10, seed);
    let truth = setup
        .data
        .exact_avg_altitude(&setup.query)
        .expect("non-empty query");
    let mut rows = Vec::new();
    for method in [SamplerKind::LsTree, SamplerKind::RsTree] {
        // err_sum[i], n_sum[i] accumulate over repetitions.
        let mut err_sum = vec![0.0f64; checkpoints_ms.len()];
        let mut n_sum = vec![0.0f64; checkpoints_ms.len()];
        for rep in 0..FIG3B_REPS {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF ^ (rep as u64) << 32);
            let altitudes = &setup.data.altitudes;
            let mut stat = OnlineStat::without_replacement(setup.q);
            let mut checkpoint = 0usize;
            let start = Instant::now();
            // The two samplers have different types; run the identical
            // loop on a trait object.
            let mut ls_sampler;
            let mut rs_sampler;
            let sampler: &mut dyn SpatialSampler<2> = match method {
                SamplerKind::LsTree => {
                    ls_sampler = setup.ls.sampler(setup.query);
                    &mut ls_sampler
                }
                _ => {
                    rs_sampler = setup
                        .rs
                        .sampler(setup.query, SampleMode::WithoutReplacement);
                    &mut rs_sampler
                }
            };
            let mut record = |i: usize, stat: &OnlineStat| {
                err_sum[i] += (stat.mean() - truth).abs() / truth.abs().max(f64::MIN_POSITIVE);
                n_sum[i] += stat.n() as f64;
            };
            while checkpoint < checkpoints_ms.len() {
                match sampler.next_sample(&mut rng) {
                    Some(item) => stat.push(altitudes[item.id as usize]),
                    None => break,
                }
                while checkpoint < checkpoints_ms.len()
                    && start.elapsed().as_secs_f64() * 1e3 >= checkpoints_ms[checkpoint]
                {
                    record(checkpoint, &stat);
                    checkpoint += 1;
                }
            }
            // Flush checkpoints the stream ended before reaching (exact
            // now: all q points consumed).
            while checkpoint < checkpoints_ms.len() {
                record(checkpoint, &stat);
                checkpoint += 1;
            }
        }
        for (i, &ms) in checkpoints_ms.iter().enumerate() {
            rows.push(Row::new(
                format!("{method}"),
                vec![
                    ("time(ms)", ms),
                    ("samples", n_sum[i] / FIG3B_REPS as f64),
                    ("rel-err(%)", err_sum[i] / FIG3B_REPS as f64 * 100.0),
                ],
            ));
        }
    }
    rows
}

/// Repetitions averaged by [`run_fig3b`].
pub const FIG3B_REPS: usize = 5;

/// E3 / Figure 5: online KDE density quality vs samples, at a city zoom
/// (Atlanta) and country zoom (USA).
pub fn run_fig5(n_tweets: usize, sample_counts: &[usize], seed: u64) -> Vec<Row> {
    let cfg = tweets::TweetConfig {
        tweets: n_tweets,
        seed,
        ..Default::default()
    };
    let records = tweets::generate(&cfg);
    let regions: [(&str, Rect2); 2] = [
        (
            "Atlanta",
            Rect2::from_corners(Point2::xy(-85.4, 32.8), Point2::xy(-83.4, 34.8)),
        ),
        ("USA", tweets::us_bounds()),
    ];
    let mut rows = Vec::new();
    for (name, rect) in regions {
        let in_region: Vec<Point2> = records
            .iter()
            .filter(|r| rect.contains_point(&r.point.xy))
            .map(|r| r.point.xy)
            .collect();
        if in_region.is_empty() {
            continue;
        }
        let bandwidth = rect.extent(0).max(rect.extent(1)) * 0.05;
        let kernel = Kernel::Epanechnikov { bandwidth };
        let exact = KdeEstimator::exact_map(rect, 32, 32, kernel, &in_region);
        let peak = exact
            .iter()
            .cloned()
            .fold(0.0, f64::max)
            .max(f64::MIN_POSITIVE);
        // Sample in random order (the estimator sees a WOR stream).
        let mut order: Vec<usize> = (0..in_region.len()).collect();
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
        order.shuffle(&mut rng);
        let mut kde = KdeEstimator::new(rect, 32, 32, kernel).with_population(in_region.len());
        let mut consumed = 0usize;
        for &target in sample_counts {
            let target = target.min(in_region.len());
            while consumed < target {
                kde.push(&in_region[order[consumed]]);
                consumed += 1;
            }
            rows.push(Row::new(
                name,
                vec![
                    ("samples", consumed as f64),
                    ("L1-err(rel)", kde.l1_distance(&exact) / peak),
                ],
            ));
        }
    }
    rows
}

/// E4 / Figure 6(a): trajectory reconstruction deviation vs sampled
/// fraction of one user's tweets.
pub fn run_fig6a(n_tweets: usize, fractions: &[f64], seed: u64) -> Vec<Row> {
    let cfg = tweets::TweetConfig {
        tweets: n_tweets,
        users: 20, // few users → long per-user histories
        with_anomaly: false,
        seed,
        ..Default::default()
    };
    let records = tweets::generate(&cfg);
    let user_points: Vec<StPoint> = records
        .iter()
        .filter(|r| r.body.get("user").and_then(|v| v.as_str()) == Some("user_3"))
        .map(|r| r.point)
        .collect();
    assert!(user_points.len() > 50, "user_3 has too few tweets");
    let mut reference = TrajectoryBuilder::new();
    for p in &user_points {
        reference.push(*p);
    }
    let (t0, t1) = (user_points[0].t, user_points[user_points.len() - 1].t);
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A);
    let mut order: Vec<usize> = (0..user_points.len()).collect();
    order.shuffle(&mut rng);
    let mut rows = Vec::new();
    let mut builder = TrajectoryBuilder::new();
    let mut consumed = 0usize;
    for &f in fractions {
        let target = ((user_points.len() as f64 * f) as usize).clamp(2, user_points.len());
        while consumed < target {
            builder.push(user_points[order[consumed]]);
            consumed += 1;
        }
        let deviation = builder
            .mean_deviation(&reference, t0, t1, 256)
            .expect("both trajectories non-empty");
        rows.push(Row::new(
            "user_3",
            vec![
                ("sampled(%)", f * 100.0),
                ("waypoints", consumed as f64),
                ("deviation(deg)", deviation),
            ],
        ));
    }
    rows
}

/// E5 / Figure 6(b): top-term precision on the Atlanta snowstorm window vs
/// number of sampled tweets.
pub fn run_fig6b(n_tweets: usize, sample_counts: &[usize], seed: u64) -> Vec<Row> {
    let cfg = tweets::TweetConfig {
        tweets: n_tweets,
        seed,
        ..Default::default()
    };
    let records = tweets::generate(&cfg);
    let window = tweets::atlanta_snow_window();
    let atlanta = Rect2::from_corners(Point2::xy(-84.6, 33.5), Point2::xy(-84.2, 34.0));
    let texts: Vec<&str> = records
        .iter()
        .filter(|r| window.contains(r.point.t) && atlanta.contains_point(&r.point.xy))
        .filter_map(|r| r.body.get("text").and_then(|v| v.as_str()))
        .collect();
    assert!(!texts.is_empty(), "anomaly window empty");
    // Ground truth top-10 terms over all window tweets.
    let mut exact = SpaceSaving::new(4096);
    for t in &texts {
        exact.push_text(t);
    }
    let truth: std::collections::HashSet<String> =
        exact.top(10).into_iter().map(|h| h.term).collect();
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6B);
    let mut order: Vec<usize> = (0..texts.len()).collect();
    order.shuffle(&mut rng);
    let mut ss = SpaceSaving::new(512);
    let mut consumed = 0usize;
    let mut rows = Vec::new();
    for &target in sample_counts {
        let target = target.min(texts.len());
        while consumed < target {
            ss.push_text(texts[order[consumed]]);
            consumed += 1;
        }
        let got: std::collections::HashSet<String> =
            ss.top(10).into_iter().map(|h| h.term).collect();
        let hit = got.intersection(&truth).count();
        rows.push(Row::new(
            "atlanta-snow",
            vec![
                ("samples", consumed as f64),
                ("precision@10", hit as f64 / 10.0),
            ],
        ));
    }
    rows
}

/// E7: update throughput for the two ST-indexes.
pub fn run_updates(n: usize, batch: usize, seed: u64) -> Vec<Row> {
    let data = osm::generate(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0D);
    let mut rows = Vec::new();

    // LS-tree updates.
    let mut ls = LsTree::bulk_load(data.items.clone(), RTreeConfig::with_fanout(FANOUT), seed);
    let start = Instant::now();
    for i in 0..batch {
        ls.insert(Item::new(
            Point2::xy((i % 360) as f64 - 180.0, (i % 180) as f64 - 90.0),
            (n + i) as u64,
        ));
    }
    let ins = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for item in data.items.iter().take(batch) {
        assert!(ls.remove(&item.point, item.id));
    }
    let del = start.elapsed().as_secs_f64();
    rows.push(Row::new(
        "LS-tree",
        vec![
            ("inserts/s", batch as f64 / ins),
            ("deletes/s", batch as f64 / del),
        ],
    ));

    // RS-tree updates (with reservoir buffer maintenance).
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(FANOUT));
    rs.prefill(&mut rng);
    let start = Instant::now();
    for i in 0..batch {
        rs.insert(
            Item::new(
                Point2::xy((i % 360) as f64 - 180.0, (i % 180) as f64 - 90.0),
                (n + i) as u64,
            ),
            &mut rng,
        );
    }
    let ins = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for item in data.items.iter().take(batch) {
        assert!(rs.remove(&item.point, item.id, &mut rng));
    }
    let del = start.elapsed().as_secs_f64();
    rows.push(Row::new(
        "RS-tree",
        vec![
            ("inserts/s", batch as f64 / ins),
            ("deletes/s", batch as f64 / del),
        ],
    ));
    rows
}

/// E8: simulated I/O per method as `k` grows (the `O(k/B)` vs `Ω(k)`
/// analysis), for two block sizes.
pub fn run_io(n: usize, ks: &[usize], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for fanout in [32usize, 128] {
        let data = osm::generate(n, seed);
        let (query, q) =
            queries::rect_with_selectivity(&data.items, 0.10, seed ^ 0xABCD).expect("non-empty");
        let plain = RTree::bulk_load(
            data.items.clone(),
            RTreeConfig::with_fanout(fanout),
            BulkMethod::Hilbert,
        );
        let mut rs = RsTree::bulk_load(data.items.clone(), {
            let mut cfg = RsTreeConfig::with_fanout(fanout);
            cfg.buffer_size = fanout;
            cfg
        });
        let mut rng = StdRng::seed_from_u64(seed);
        rs.prefill(&mut rng);
        let ls = LsTree::bulk_load(data.items.clone(), RTreeConfig::with_fanout(fanout), seed);
        for &k in ks {
            let k = k.min(q);
            // RandomPath
            let before = plain.io().reads();
            let mut s = RandomPath::new(&plain, query, SampleMode::WithoutReplacement);
            s.draw(k, &mut rng);
            let rp = plain.io().reads() - before;
            // LS
            let before = ls.io().reads();
            let mut s = ls.sampler(query);
            s.draw(k, &mut rng);
            let lsio = ls.io().reads() - before;
            // RS
            let rs_io = rs.io_handle();
            let before = rs_io.reads();
            let mut s = rs.sampler(query, SampleMode::WithoutReplacement);
            s.draw(k, &mut rng);
            drop(s);
            let rsio = rs_io.reads() - before;
            for (label, ios) in [("RandomPath", rp), ("LS-tree", lsio), ("RS-tree", rsio)] {
                rows.push(Row::new(
                    format!("{label}/B={fanout}"),
                    vec![
                        ("k", k as f64),
                        ("sim-IOs", ios as f64),
                        ("IOs/sample", ios as f64 / k as f64),
                    ],
                ));
            }
        }
    }
    rows
}

/// E9 ablation: RS-tree design choices — part selector and buffering.
pub fn run_ablation(n: usize, k: usize, seed: u64) -> Vec<Row> {
    let data = osm::generate(n, seed);
    let (query, q) =
        queries::rect_with_selectivity(&data.items, 0.10, seed ^ 0xABCD).expect("non-empty");
    let k = k.min(q);
    let mut rows = Vec::new();
    for (label, selector, prefill) in [
        ("alias+buffers", SelectorKind::Alias, true),
        ("A/R+buffers", SelectorKind::AcceptReject, true),
        ("linear+buffers", SelectorKind::Linear, true),
        ("alias,cold", SelectorKind::Alias, false),
    ] {
        let mut cfg = RsTreeConfig::with_fanout(FANOUT);
        cfg.selector = selector;
        let mut rs = RsTree::bulk_load(data.items.clone(), cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x42);
        if prefill {
            rs.prefill(&mut rng);
        }
        let before = rs.io().reads();
        let start = Instant::now();
        let mut s = rs.sampler(query, SampleMode::WithoutReplacement);
        let drawn = s.draw(k, &mut rng).len();
        let secs = start.elapsed().as_secs_f64();
        drop(s);
        rows.push(Row::new(
            label,
            vec![
                ("k", drawn as f64),
                ("time(s)", secs),
                ("sim-IOs", (rs.io().reads() - before) as f64),
            ],
        ));
    }
    rows
}

/// E10: the SampleFirst / index-sampler crossover as selectivity rises,
/// plus what the optimizer picks at each point.
pub fn run_crossover(n: usize, k: usize, seed: u64) -> Vec<Row> {
    use storm_core::cost::{self, CostInputs};
    let data = osm::generate(n, seed);
    let plain = RTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(FANOUT),
        BulkMethod::Hilbert,
    );
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(FANOUT));
    let mut rng = StdRng::seed_from_u64(seed);
    rs.prefill(&mut rng);
    let mut rows = Vec::new();
    for frac in [0.01, 0.05, 0.2, 0.5, 0.9] {
        let Some((query, q)) = queries::rect_with_selectivity(&data.items, frac, seed ^ 7) else {
            continue;
        };
        let k = k.min(q).max(1);
        // SampleFirst wall time.
        let start = Instant::now();
        let mut s = SampleFirst::new(&data.items, query, SampleMode::WithReplacement);
        let got = s.draw(k, &mut rng).len();
        let sf = if got == k {
            start.elapsed().as_secs_f64()
        } else {
            f64::INFINITY
        };
        // RS wall time.
        let start = Instant::now();
        let mut s = rs.sampler(query, SampleMode::WithReplacement);
        s.draw(k, &mut rng);
        let rst = start.elapsed().as_secs_f64();
        drop(s);
        let pick = cost::recommend(
            &CostInputs {
                n,
                q_est: q,
                k_est: k,
                block: FANOUT,
                height: plain.height(),
            },
            SampleMode::WithReplacement,
        );
        rows.push(Row::new(
            format!("q/N={frac}"),
            vec![
                ("SampleFirst(s)", sf),
                ("RS-tree(s)", rst),
                (
                    "opt=SF",
                    if pick == SamplerKind::SampleFirst {
                        1.0
                    } else {
                        0.0
                    },
                ),
            ],
        ));
    }
    rows
}

/// E11: distributed scaling — total cluster work vs critical-path I/O as
/// the shard count grows (the paper's "cluster of commodity machines").
pub fn run_scaling(n: usize, k: usize, seed: u64) -> Vec<Row> {
    use storm_core::DistributedRsTree;
    let data = osm::generate(n, seed);
    let (query, q) =
        queries::rect_with_selectivity(&data.items, 0.10, seed ^ 0xABCD).expect("non-empty");
    let k = k.min(q);
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4, 8, 16, 32] {
        let mut cluster = DistributedRsTree::bulk_load(
            data.items.clone(),
            shards,
            RsTreeConfig::with_fanout(FANOUT),
        );
        let mut rng = StdRng::seed_from_u64(seed ^ shards as u64);
        cluster.prefill(&mut rng);
        cluster.reset_io();
        let start = Instant::now();
        let mut s = cluster.sampler(query, SampleMode::WithoutReplacement);
        let drawn = s.draw(k, &mut rng).len();
        let secs = start.elapsed().as_secs_f64();
        drop(s);
        rows.push(Row::new(
            format!("{shards} shards"),
            vec![
                ("k", drawn as f64),
                ("time(s)", secs),
                ("total-IOs", cluster.total_reads() as f64),
                ("critical-path", cluster.max_shard_reads() as f64),
            ],
        ));
    }
    rows
}

/// One measured configuration of the batched scatter-gather experiment
/// (E12): how fast a fixed WOR sample stream drains from a sharded
/// RS-tree, per executor, batch size, and shard count.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// `"inline"` (single-threaded in-process coordinator loop — no
    /// executor, so also no per-draw messaging cost; the pre-executor
    /// model), `"sequential"` (scatter-gather executor doing one-at-a-time
    /// gather: one `Fill(1)` round-trip to a shard per draw, the
    /// distributed paper setting's per-sample network hop), or
    /// `"parallel"` (batched scatter-gather: round-trips amortised over
    /// `batch` draws, shard work overlapping across workers).
    pub method: &'static str,
    /// Data-set size `N`.
    pub n: usize,
    /// Exact result size `q = |P ∩ Q|`.
    pub q: usize,
    /// Batch size `k` per `next_batch` call (1 for the sequential baseline).
    pub batch: usize,
    /// Shard count.
    pub shards: usize,
    /// Samples actually drawn.
    pub samples: usize,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl BatchPoint {
    /// Throughput in samples per second.
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.secs.max(1e-12)
    }
}

/// E12: batched-kernel + parallel scatter-gather throughput on the
/// Figure-3(a) workload (q/N = 10% WOR stream), over a grid of shard
/// counts × batch sizes, against the sequential one-at-a-time baseline.
///
/// Each configuration drains `min(q, 65536)` samples from a fresh stream
/// over the *same* prefilled shards, so rows are directly comparable.
/// The acceptance comparison is `parallel` (batched) vs `sequential`
/// (one `Fill(1)` round-trip per draw through the same executor) — the
/// pair that isolates what batching buys a shard-gather protocol. The
/// `inline` series is the pre-executor in-process loop: it pays no
/// messaging at all, so on a single-core host (no shard overlap possible)
/// it bounds what any executor can reach.
pub fn run_batch_throughput(
    n: usize,
    shard_counts: &[usize],
    batch_sizes: &[usize],
    seed: u64,
) -> Vec<BatchPoint> {
    use storm_core::DistributedRsTree;
    let data = osm::generate(n, seed);
    let (query, q) =
        queries::rect_with_selectivity(&data.items, 0.10, seed ^ 0xABCD).expect("non-empty");
    let total = q.min(65_536);
    let mut points = Vec::new();
    for &shards in shard_counts {
        let mut cluster = DistributedRsTree::bulk_load(
            data.items.clone(),
            shards,
            RsTreeConfig::with_fanout(FANOUT),
        );
        let mut rng = StdRng::seed_from_u64(seed ^ shards as u64);
        cluster.prefill(&mut rng);

        // Inline baseline: the in-process coordinator loop (no executor,
        // no messaging), one draw per pass.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E0);
        let start = Instant::now();
        let mut s = cluster.sampler(query, SampleMode::WithoutReplacement);
        let mut drawn = 0usize;
        while drawn < total && s.next_sample(&mut rng).is_some() {
            drawn += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        drop(s);
        points.push(BatchPoint {
            method: "inline",
            n,
            q,
            batch: 1,
            shards,
            samples: drawn,
            secs,
        });

        // Executor runs over the same shards (the baseline's WOR stream
        // left the trees intact: a fresh sampler restarts the stream).
        // First sequential one-at-a-time gather — a `Fill(1)` round-trip
        // per draw — then the batched configurations.
        let parallel = cluster.into_parallel();
        // Untimed warm-up: each worker builds its frozen snapshot at
        // thread start, and on a small host that startup cost would land
        // on whichever timed series runs first. One tiny drain forces an
        // Open/Fill round-trip through every worker, so all snapshots
        // exist before the clock starts.
        {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x33AA);
            let mut s = parallel.sampler(query, SampleMode::WithReplacement, seed ^ 0x77);
            let mut buf: Vec<Item<2>> = Vec::with_capacity(8);
            let _ = s.next_batch(&mut rng, &mut buf, 8);
        }
        for (method, batches) in [("sequential", &[1usize][..]), ("parallel", batch_sizes)] {
            for &batch in batches {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xBA ^ batch as u64);
                let start = Instant::now();
                let mut s =
                    parallel.sampler(query, SampleMode::WithoutReplacement, seed ^ batch as u64);
                let mut buf: Vec<Item<2>> = Vec::with_capacity(batch);
                let mut drawn = 0usize;
                while drawn < total {
                    buf.clear();
                    let got = s.next_batch(&mut rng, &mut buf, batch.min(total - drawn));
                    if got == 0 {
                        break;
                    }
                    drawn += got;
                }
                let secs = start.elapsed().as_secs_f64();
                drop(s);
                points.push(BatchPoint {
                    method,
                    n,
                    q,
                    batch,
                    shards,
                    samples: drawn,
                    secs,
                });
            }
        }
    }
    points
}

/// E14: the single-thread frozen-kernel microbenchmark. One shard, the
/// Figure-3(a) workload (q/N = 10% WOR stream), comparing the boxed
/// RS-tree sampler (the E12 `inline` methodology at 1 shard) against the
/// frozen flat-array kernel — same tree contents, same stream semantics,
/// no executor or messaging in either series, so the ratio isolates what
/// the SoA arena + implicit indexing + alias descents buy a single core.
///
/// Points: `kernel-boxed` (per-draw `next_sample` loop, batch column 1),
/// then `kernel-frozen` once per entry of `batches` (arena `next_batch`
/// drains; batch 1 shows the layout win alone, larger batches add the
/// amortised-dispatch win).
pub fn run_kernel_bench(n: usize, batches: &[usize], seed: u64) -> Vec<BatchPoint> {
    let data = osm::generate(n, seed);
    let (query, q) =
        queries::rect_with_selectivity(&data.items, 0.10, seed ^ 0xABCD).expect("non-empty");
    let total = q.min(65_536);
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(FANOUT));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    rs.prefill(&mut rng);
    let mut points = Vec::new();

    // Boxed baseline: one draw per pass through the buffered cone.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E0);
    let start = Instant::now();
    let mut s = rs.sampler(query, SampleMode::WithoutReplacement);
    let mut drawn = 0usize;
    while drawn < total && s.next_sample(&mut rng).is_some() {
        drawn += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    drop(s);
    points.push(BatchPoint {
        method: "kernel-boxed",
        n,
        q,
        batch: 1,
        shards: 1,
        samples: drawn,
        secs,
    });

    // Frozen kernel over the same tree contents.
    let frozen = std::sync::Arc::new(rs.freeze());
    for &batch in batches {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E0);
        let start = Instant::now();
        let mut s = frozen.sampler(&query, SampleMode::WithoutReplacement);
        let mut buf: Vec<Item<2>> = Vec::with_capacity(batch);
        let mut drawn = 0usize;
        while drawn < total {
            buf.clear();
            let got = s.next_batch(&mut rng, &mut buf, batch.min(total - drawn));
            if got == 0 {
                break;
            }
            drawn += got;
        }
        let secs = start.elapsed().as_secs_f64();
        points.push(BatchPoint {
            method: "kernel-frozen",
            n,
            q,
            batch,
            shards: 1,
            samples: drawn,
            secs,
        });
    }
    points
}

/// Formats batch points as printable [`Row`]s.
pub fn batch_rows(points: &[BatchPoint]) -> Vec<Row> {
    points
        .iter()
        .map(|p| {
            Row::new(
                format!("{}/s={}", p.method, p.shards),
                vec![
                    ("batch", p.batch as f64),
                    ("samples", p.samples as f64),
                    ("time(s)", p.secs),
                    ("samples/s", p.samples_per_sec()),
                ],
            )
        })
        .collect()
}

/// Serialises batch points as the machine-readable `BENCH_results.json`
/// payload. Hand-rolled writer — the workspace vendors no serde — with a
/// stable field order so downstream diffs stay readable.
pub fn batch_json(points: &[BatchPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"method\": \"{}\", \"n\": {}, \"q\": {}, \"batch\": {}, \"shards\": {}, \
             \"samples\": {}, \"samples_per_sec\": {:.1}, \"wall_time_s\": {:.6}}}",
            p.method,
            p.n,
            p.q,
            p.batch,
            p.shards,
            p.samples,
            p.samples_per_sec(),
            p.secs
        );
        out.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// One measured configuration of the multi-session serving experiment
/// (E15): `sessions` concurrent online-aggregation queries drained to a
/// fixed per-session sample budget, either through the shared-pool
/// [`storm_server::SessionServer`] (`"serve"`) or a naive
/// one-query-at-a-time loop over [`storm_core::ParallelSampler`]
/// (`"naive"`, the pre-server serving story: each query pays its own
/// open/fill round-trips and no work overlaps across queries).
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// `"serve"` or `"naive"`.
    pub method: &'static str,
    /// Data-set size `N`.
    pub n: usize,
    /// Concurrent sessions submitted at `t = 0`.
    pub sessions: usize,
    /// Shard-worker count.
    pub shards: usize,
    /// Per-session sample budget.
    pub budget: u64,
    /// Total samples delivered across all sessions.
    pub samples: u64,
    /// Wall-clock seconds until every session finished.
    pub secs: f64,
    /// Median time from batch submission to a session's first estimate.
    pub p50_first_ms: f64,
    /// 99th-percentile time to first estimate.
    pub p99_first_ms: f64,
}

impl ServePoint {
    /// Completed queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        self.sessions as f64 / self.secs.max(1e-12)
    }
}

/// Percentile (nearest-rank on the sorted copy) of `values`, in place.
fn percentile_ms(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((p / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[idx.min(values.len() - 1)]
}

/// The deterministic per-session workload: a window covering ~10% of the
/// data extent per axis at a seed-chosen position, plus the session seed.
fn serve_session_query(lo: Point2, hi: Point2, seed: u64, i: usize) -> (Rect2, u64) {
    use rand::RngExt;
    let qseed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(qseed);
    let mut corner = [0.0f64; 2];
    let mut side = [0.0f64; 2];
    for axis in 0..2 {
        let span = hi.get(axis) - lo.get(axis);
        side[axis] = span * 0.02;
        corner[axis] = lo.get(axis) + rng.random::<f64>() * (span - side[axis]);
    }
    let a = Point2::new(corner);
    let b = Point2::new([corner[0] + side[0], corner[1] + side[1]]);
    (Rect2::from_corners(a, b), qseed)
}

/// E15: multi-session serving throughput and time-to-first-estimate.
///
/// All `sessions` queries "arrive" at `t = 0` (the interactive burst the
/// paper's multi-user setting implies). The `naive` leg serves them one
/// query at a time through a fresh [`storm_core::ParallelSampler`] each —
/// per query it pays the open scatter-gather, the first fill round-trip,
/// and the merge, with every co-tenant queued behind it, so its
/// first-estimate tail is the whole batch wall time. The `serve` leg
/// submits all of them to one [`storm_server::SessionServer`] over the
/// *same* worker pool: admissions settle in one batched gather, per-tick
/// fills coalesce into one `FillMany` per shard, and deficit-round-robin
/// credit advances every session together, so first estimates land within
/// a tick or two of submission for the whole population.
///
/// Both legs drain the identical per-session budget in identical block
/// sizes over the same shards (equal total sample throughput); the
/// acceptance ratio is `serve` vs `naive` queries/sec at the largest
/// session count.
pub fn run_serve_bench(n: usize, session_counts: &[usize], seed: u64) -> Vec<ServePoint> {
    use storm_core::DistributedRsTree;
    use storm_server::{QuerySpec, ServeConfig, SessionEvent, SessionServer};
    const SHARDS: usize = 16;
    const BUDGET: u64 = 64;
    const BLOCK: usize = 16;
    let data = osm::generate(n, seed);
    let (mut lo, mut hi) = (data.items[0].point, data.items[0].point);
    for item in &data.items {
        for axis in 0..2 {
            lo = lo.with(axis, lo.get(axis).min(item.point.get(axis)));
            hi = hi.with(axis, hi.get(axis).max(item.point.get(axis)));
        }
    }
    let mut cluster = DistributedRsTree::bulk_load(
        data.items.clone(),
        SHARDS,
        RsTreeConfig::with_fanout(FANOUT),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE15);
    cluster.prefill(&mut rng);
    // Moved into each serve leg's server and handed back by `shutdown`.
    let mut parallel = cluster.into_parallel();
    // Untimed warm-up (worker snapshot builds; see run_batch_throughput).
    {
        let (query, qseed) = serve_session_query(lo, hi, seed, usize::MAX);
        let mut rng = StdRng::seed_from_u64(qseed);
        let mut s = parallel.sampler(query, SampleMode::WithReplacement, qseed);
        let mut buf: Vec<Item<2>> = Vec::with_capacity(8);
        let _ = s.next_batch(&mut rng, &mut buf, 8);
    }
    let mut points = Vec::new();
    for &sessions in session_counts {
        // Naive leg: one query at a time over the shared pool.
        let t0 = Instant::now();
        let mut first_ms: Vec<f64> = Vec::with_capacity(sessions);
        let mut total = 0u64;
        for i in 0..sessions {
            let (query, qseed) = serve_session_query(lo, hi, seed, i);
            let mut rng = StdRng::seed_from_u64(qseed);
            let mut s = parallel.sampler(query, SampleMode::WithReplacement, qseed);
            let mut stat = OnlineStat::new();
            let mut buf: Vec<Item<2>> = Vec::with_capacity(BLOCK);
            let mut drawn = 0u64;
            let mut first: Option<f64> = None;
            while drawn < BUDGET {
                buf.clear();
                let want = BLOCK.min((BUDGET - drawn) as usize);
                let got = s.next_batch(&mut rng, &mut buf, want);
                if got == 0 {
                    break;
                }
                for item in &buf {
                    stat.push(item.point.get(0));
                }
                drawn += got as u64;
                if first.is_none() {
                    let _ = stat.mean_estimate();
                    first = Some(t0.elapsed().as_secs_f64() * 1e3);
                }
            }
            total += drawn;
            first_ms.push(first.unwrap_or_else(|| t0.elapsed().as_secs_f64() * 1e3));
        }
        let secs = t0.elapsed().as_secs_f64();
        points.push(ServePoint {
            method: "naive",
            n,
            sessions,
            shards: SHARDS,
            budget: BUDGET,
            samples: total,
            secs,
            p50_first_ms: percentile_ms(&mut first_ms, 50.0),
            p99_first_ms: percentile_ms(&mut first_ms, 99.0),
        });

        // Serve leg: the same burst through the session scheduler.
        let server = SessionServer::start(
            parallel,
            ServeConfig {
                max_sessions: sessions,
                queue_limit: sessions,
                // A whole budget of credit per tick: every session's four
                // 16-sample rounds run back-to-back inside one tick, so
                // the per-tick costs (grant scan, progress emission) are
                // paid once per session instead of once per round. Round
                // *sizes* stay `block` — quantum only gates when rounds
                // run, so the determinism contract is untouched.
                quantum: BUDGET as usize,
                block: BLOCK,
                confidence: 0.95,
            },
        );
        let t0 = Instant::now();
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let (query, qseed) = serve_session_query(lo, hi, seed, i);
                server.open(QuerySpec {
                    query,
                    mode: SampleMode::WithReplacement,
                    seed: qseed,
                    sample_budget: Some(BUDGET),
                    time_budget_ms: None,
                    target_error: None,
                })
            })
            .collect();
        // Drain handle by handle with blocking recvs: every session has
        // its own event channel, so events queue while the collector is
        // busy elsewhere and the scheduler thread keeps the core. The
        // observed first-event time is an upper bound on the true
        // first-estimate latency (late-walked handles are charged the
        // drain skew), which keeps the serve percentiles conservative.
        let mut first_ms: Vec<f64> = Vec::with_capacity(sessions);
        let mut total = 0u64;
        for h in &handles {
            let mut first: Option<f64> = None;
            while let Some(ev) = h.recv_event() {
                match ev {
                    SessionEvent::Progress { .. } => {
                        if first.is_none() {
                            first = Some(t0.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    SessionEvent::Done { outcome, .. } => {
                        if first.is_none() {
                            first = Some(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        total += outcome.samples;
                        break;
                    }
                    SessionEvent::Admitted { .. } => {}
                    SessionEvent::Rejected { .. } => break,
                }
            }
            first_ms.push(first.unwrap_or_else(|| t0.elapsed().as_secs_f64() * 1e3));
        }
        let secs = t0.elapsed().as_secs_f64();
        points.push(ServePoint {
            method: "serve",
            n,
            sessions,
            shards: SHARDS,
            budget: BUDGET,
            samples: total,
            secs,
            p50_first_ms: percentile_ms(&mut first_ms, 50.0),
            p99_first_ms: percentile_ms(&mut first_ms, 99.0),
        });
        parallel = server.shutdown();
    }
    let _ = parallel;
    points
}

/// Formats serve points as printable [`Row`]s.
pub fn serve_rows(points: &[ServePoint]) -> Vec<Row> {
    points
        .iter()
        .map(|p| {
            Row::new(
                format!("{}/S={}", p.method, p.sessions),
                vec![
                    ("queries/s", p.queries_per_sec()),
                    ("samples", p.samples as f64),
                    ("time(s)", p.secs),
                    ("p50-first(ms)", p.p50_first_ms),
                    ("p99-first(ms)", p.p99_first_ms),
                ],
            )
        })
        .collect()
}

/// Serialises serve points in the `BENCH_results.json` entry format
/// (hand-rolled like [`batch_json`]; `sessions` marks E15 entries).
pub fn serve_json(points: &[ServePoint]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"method\": \"{}\", \"n\": {}, \"sessions\": {}, \"shards\": {}, \
             \"budget\": {}, \"samples\": {}, \"queries_per_sec\": {:.1}, \
             \"wall_time_s\": {:.6}, \"p50_first_ms\": {:.3}, \"p99_first_ms\": {:.3}}}",
            p.method,
            p.n,
            p.sessions,
            p.shards,
            p.budget,
            p.samples,
            p.queries_per_sec(),
            p.secs,
            p.p50_first_ms,
            p.p99_first_ms
        );
        out.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Merges a freshly produced entry array into an existing
/// `BENCH_results.json` payload: prior entries of the same experiment
/// (matched by `marker`, e.g. `"sessions"` for E15) are replaced, entries
/// of other experiments are kept. Both inputs must be in the one-entry-
/// per-line format the writers here produce.
pub fn merge_results_json(existing: Option<&str>, new_entries: &str, marker: &str) -> String {
    let key = format!("\"{marker}\":");
    let mut entries: Vec<String> = Vec::new();
    let keep = |line: &str| {
        let t = line.trim().trim_end_matches(',');
        (t.starts_with('{') && t.ends_with('}')).then(|| t.to_owned())
    };
    if let Some(text) = existing {
        entries.extend(text.lines().filter_map(keep).filter(|e| !e.contains(&key)));
    }
    entries.extend(new_entries.lines().filter_map(keep));
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("  ");
        out.push_str(e);
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// One measured configuration of the live-ingestion experiment (E16):
/// the LSM-style delta+runs [`storm_core::IngestIndex`] absorbing the
/// synthetic tweet firehose, alone or while a query thread keeps drawing.
#[derive(Debug, Clone)]
pub struct IngestPoint {
    /// `"stream-ingest"` (writer only), `"query-frozen"` (reader only,
    /// fully ingested + compacted data), or `"ingest+query"` (both at
    /// once — the live-ingestion setting).
    pub method: &'static str,
    /// Total records in the feed.
    pub n: usize,
    /// Inserts performed inside the timed window.
    pub inserts: usize,
    /// Samples drawn inside the timed window.
    pub samples: u64,
    /// Epochs published (minor freezes + compactions) inside the window.
    pub epochs: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl IngestPoint {
    /// Ingest throughput in inserts per second.
    pub fn inserts_per_sec(&self) -> f64 {
        self.inserts as f64 / self.secs.max(1e-12)
    }

    /// Sampling throughput in samples per second.
    pub fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.secs.max(1e-12)
    }
}

/// E16: ingest-while-query throughput on the tweet firehose.
///
/// Three timed windows over the same `n`-tweet feed:
///
/// 1. `stream-ingest` — the whole feed streamed batch-by-batch into a
///    fresh [`storm_core::IngestIndex`] (auto minor-freezes included):
///    pure writer throughput through the delta+runs path.
/// 2. `query-frozen` — WR samples drawn from the fully ingested and
///    compacted index: pure reader throughput, the no-writer baseline.
/// 3. `ingest+query` — the second half of the feed streamed in by a
///    writer thread while the query thread draws continuously, reopening
///    its stream whenever a freeze publishes a new epoch (open sessions
///    pin their epoch; new opens get the latest). Both rates measured
///    over the same overlap window.
pub fn run_ingest_bench(n: usize, seed: u64) -> Vec<IngestPoint> {
    use storm_core::{IngestConfig, IngestIndex};
    let cfg = tweets::TweetConfig {
        tweets: n,
        seed,
        ..Default::default()
    };
    let items: Vec<Item<2>> = tweets::generate(&cfg)
        .iter()
        .enumerate()
        .map(|(i, r)| Item::new(r.point.xy, i as u64))
        .collect();
    let query = tweets::us_bounds();
    let index_cfg = IngestConfig::default();
    let mut points = Vec::new();

    // 1. Pure streaming ingest.
    let idx = IngestIndex::<2>::new(index_cfg);
    let start = Instant::now();
    for batch in items.chunks(512) {
        idx.insert_batch(batch.iter().copied());
    }
    let secs = start.elapsed().as_secs_f64();
    points.push(IngestPoint {
        method: "stream-ingest",
        n,
        inserts: n,
        samples: 0,
        epochs: idx.epoch(),
        secs,
    });

    // 2. Reader baseline over the compacted result.
    idx.compact();
    let target = (n as u64).min(262_144);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE16);
    let mut s = idx.sampler(&query, SampleMode::WithReplacement);
    let mut buf: Vec<Item<2>> = Vec::with_capacity(256);
    let mut drawn = 0u64;
    let start = Instant::now();
    while drawn < target {
        buf.clear();
        let want = 256.min((target - drawn) as usize);
        let got = s.next_batch(&mut rng, &mut buf, want);
        if got == 0 {
            break;
        }
        drawn += got as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    points.push(IngestPoint {
        method: "query-frozen",
        n,
        inserts: 0,
        samples: drawn,
        epochs: 0,
        secs,
    });

    // 3. The live setting: ingest and query concurrently.
    let idx = std::sync::Arc::new(IngestIndex::<2>::new(index_cfg));
    let half = items.len() / 2;
    for batch in items[..half].chunks(512) {
        idx.insert_batch(batch.iter().copied());
    }
    let epoch_before = idx.epoch();
    let done = std::sync::atomic::AtomicBool::new(false);
    let mut samples = 0u64;
    let tail = &items[half..];
    let start = Instant::now();
    std::thread::scope(|scope| {
        let idx_w = std::sync::Arc::clone(&idx);
        let done_w = &done;
        scope.spawn(move || {
            for batch in tail.chunks(512) {
                idx_w.insert_batch(batch.iter().copied());
            }
            done_w.store(true, std::sync::atomic::Ordering::Release);
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1E16);
        let mut s = idx.sampler(&query, SampleMode::WithReplacement);
        let mut buf: Vec<Item<2>> = Vec::with_capacity(256);
        // Draw-then-check: even if the writer wins the race outright the
        // reader still measures at least one mid-ingest batch.
        loop {
            if s.epoch() != idx.epoch() {
                s = idx.sampler(&query, SampleMode::WithReplacement);
            }
            buf.clear();
            samples += s.next_batch(&mut rng, &mut buf, 256) as u64;
            if done.load(std::sync::atomic::Ordering::Acquire) {
                break;
            }
        }
    });
    let secs = start.elapsed().as_secs_f64();
    points.push(IngestPoint {
        method: "ingest+query",
        n,
        inserts: items.len() - half,
        samples,
        epochs: idx.epoch() - epoch_before,
        secs,
    });
    points
}

/// Formats ingest points as printable [`Row`]s.
pub fn ingest_rows(points: &[IngestPoint]) -> Vec<Row> {
    points
        .iter()
        .map(|p| {
            Row::new(
                p.method,
                vec![
                    ("inserts", p.inserts as f64),
                    ("inserts/s", p.inserts_per_sec()),
                    ("samples", p.samples as f64),
                    ("samples/s", p.samples_per_sec()),
                    ("epochs", p.epochs as f64),
                    ("time(s)", p.secs),
                ],
            )
        })
        .collect()
}

/// Serialises ingest points in the machine-readable `BENCH_ingest.json`
/// format (hand-rolled like [`batch_json`]).
pub fn ingest_json(points: &[IngestPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"method\": \"{}\", \"n\": {}, \"inserts\": {}, \"inserts_per_sec\": {:.1}, \
             \"samples\": {}, \"samples_per_sec\": {:.1}, \"epochs\": {}, \"wall_time_s\": {:.6}}}",
            p.method,
            p.n,
            p.inserts,
            p.inserts_per_sec(),
            p.samples,
            p.samples_per_sec(),
            p.epochs,
            p.secs
        );
        out.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// E13 — degraded-mode recovery vs injected fault rate.
///
/// For each per-mille fault rate, a 4-shard parallel cluster runs the
/// Figure-3(a) workload (q/N = 10% WOR stream) under a deterministic
/// [`storm_engine::FaultPlan`] that drops shard replies at `rate` and
/// panics workers at `rate / 4`, with a 20 ms timeout + 2-retry recovery
/// policy. Columns: delivered samples, written-off mass, dead shards,
/// wall time, and recovery latency per 1 000 delivered samples. Rate 0
/// is the E12 no-fault baseline for overhead comparison.
pub fn run_fault_recovery(n: usize, rates_permille: &[u16], seed: u64) -> Vec<Row> {
    use std::sync::Arc;
    use storm_core::DistributedRsTree;
    use storm_engine::{FaultPlan, RetryPolicy};
    let data = osm::generate(n, seed);
    let (query, q) =
        queries::rect_with_selectivity(&data.items, 0.10, seed ^ 0xFA17).expect("non-empty");
    let total = q.min(16_384);
    let mut rows = Vec::new();
    for &rate in rates_permille {
        let mut cluster =
            DistributedRsTree::bulk_load(data.items.clone(), 4, RsTreeConfig::with_fanout(FANOUT))
                .into_parallel();
        cluster.set_retry_policy(RetryPolicy {
            max_retries: 2,
            timeout_ms: 20,
            backoff: 2,
        });
        if rate > 0 {
            cluster.set_fault_hook(Arc::new(
                FaultPlan::seeded(seed ^ u64::from(rate))
                    .with_drops(rate)
                    .with_panics(rate / 4),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE13);
        let start = Instant::now();
        let mut s = cluster.sampler(query, SampleMode::WithoutReplacement, seed);
        let mut buf: Vec<Item<2>> = Vec::with_capacity(64);
        let mut drawn = 0usize;
        while drawn < total {
            buf.clear();
            let got = s.next_batch(&mut rng, &mut buf, 64.min(total - drawn));
            if got == 0 {
                break;
            }
            drawn += got;
        }
        let secs = start.elapsed().as_secs_f64();
        let d = s.degraded().unwrap_or_default();
        drop(s);
        rows.push(Row::new(
            format!("{rate}permille"),
            vec![
                ("q", q as f64),
                ("samples", drawn as f64),
                ("lost", d.lost_mass() as f64),
                ("dead", d.dead_shards().len() as f64),
                ("time(s)", secs),
                ("ms/1k", secs * 1e6 / drawn.max(1) as f64),
            ],
        ));
    }
    rows
}

/// Formats a [`TimeRange`] compactly (shared by examples).
pub fn fmt_time(range: TimeRange) -> String {
    format!("[{}, {})", range.start(), range.end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_shapes_hold_at_small_scale() {
        // LS and RS beat RandomPath and RangeReport on I/Os at small k/q.
        let rows = run_fig3a(30_000, &[0.001, 0.01], 42);
        let io_of = |method: &str, frac: f64| -> f64 {
            rows.iter()
                .find(|r| r.label == method && (r.values[0].1 - frac * 100.0).abs() < 1e-9)
                .map(|r| r.values[3].1)
                .expect("row exists")
        };
        for frac in [0.001, 0.01] {
            let rs = io_of("RS-tree", frac);
            let ls = io_of("LS-tree", frac);
            let rp = io_of("RandomPath", frac);
            let rr = io_of("QueryFirst", frac);
            assert!(rs < rp, "RS {rs} !< RandomPath {rp} at {frac}");
            assert!(ls < rr, "LS {ls} !< RangeReport {rr} at {frac}");
        }
    }

    #[test]
    fn fig3b_error_decreases_over_time() {
        let rows = run_fig3b(30_000, &[2.0, 20.0, 120.0], 42);
        for method in ["LS-tree", "RS-tree"] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.label == method)
                .map(|r| r.values[2].1)
                .collect();
            assert_eq!(series.len(), 3);
            assert!(
                series[2] <= series[0] + 1e-9,
                "{method} error grew: {series:?}"
            );
        }
    }

    #[test]
    fn fig5_error_shrinks_with_samples() {
        let rows = run_fig5(20_000, &[50, 2000], 42);
        for region in ["Atlanta", "USA"] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.label == region)
                .map(|r| r.values[1].1)
                .collect();
            assert!(series.len() >= 2);
            assert!(series[1] < series[0], "{region}: {series:?}");
        }
    }

    #[test]
    fn fig6a_deviation_shrinks() {
        let rows = run_fig6a(20_000, &[0.05, 0.8], 42);
        assert!(rows[1].values[2].1 <= rows[0].values[2].1);
    }

    #[test]
    fn fig6b_precision_improves() {
        let rows = run_fig6b(30_000, &[20, 500], 42);
        let first = rows[0].values[1].1;
        let last = rows[rows.len() - 1].values[1].1;
        assert!(last >= first);
        assert!(last >= 0.7, "final precision {last}");
    }

    #[test]
    fn io_per_sample_shapes() {
        // RandomPath pays ≥1 I/O per sample; LS/RS pay ≪ 1 amortised.
        let rows = run_io(30_000, &[256], 42);
        for fanout in [32, 128] {
            let get = |m: &str| {
                rows.iter()
                    .find(|r| r.label == format!("{m}/B={fanout}"))
                    .unwrap()
                    .values[2]
                    .1
            };
            assert!(get("RandomPath") >= 1.0);
            assert!(get("LS-tree") < get("RandomPath"));
            assert!(get("RS-tree") < get("RandomPath"));
        }
    }

    #[test]
    fn scaling_critical_path_improves() {
        // With a compact query only the shards overlapping it share the
        // load, so the curve plateaus — but the BEST multi-shard
        // configuration must beat the single machine.
        let rows = run_scaling(30_000, 1024, 42);
        let single = rows[0].values[3].1;
        let best = rows[1..]
            .iter()
            .map(|r| r.values[3].1)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < single,
            "no multi-shard config beat 1 shard: {single} vs best {best}"
        );
    }

    #[test]
    fn fault_recovery_is_accountable_at_every_rate() {
        let rows = run_fault_recovery(20_000, &[0, 200], 42);
        assert_eq!(rows.len(), 2);
        // Rate 0: nothing lost, no dead shards, full delivery.
        assert_eq!(rows[0].values[2].1, 0.0, "clean run lost mass");
        assert_eq!(rows[0].values[3].1, 0.0, "clean run killed shards");
        assert_eq!(rows[0].values[1].1, rows[0].values[0].1.min(16_384.0));
        // Rate 200‰ (+50‰ panics): delivered + lost still covers the
        // stream target — degradation is declared, never silent.
        let q = rows[1].values[0].1;
        let target = q.min(16_384.0);
        assert!(
            rows[1].values[1].1 + rows[1].values[2].1 >= target,
            "delivered {} + lost {} < target {target}",
            rows[1].values[1].1,
            rows[1].values[2].1
        );
    }

    #[test]
    fn batch_harness_replays_deterministically() {
        // Fixed-seed replay across the full multi-threaded harness: the
        // drained sample counts (everything but wall-clock) are identical
        // run to run regardless of thread scheduling.
        storm_testkit::assert_deterministic(2, "batch-throughput points", || {
            run_batch_throughput(10_000, &[4], &[64], 7)
                .into_iter()
                .map(|p| (p.method, p.shards, p.batch, p.samples))
                .collect::<Vec<_>>()
        });
    }

    #[test]
    fn batch_throughput_drains_every_configuration() {
        let points = run_batch_throughput(20_000, &[1, 4], &[16, 256], 42);
        // 2 shard counts × (1 inline + 1 sequential + 2 parallel) rows.
        assert_eq!(points.len(), 8);
        let total = points[0].q.min(65_536);
        for p in &points {
            // WOR completeness: every configuration drains the full target
            // regardless of executor, batch size, or shard count.
            assert_eq!(
                p.samples, total,
                "{}/s={} b={}",
                p.method, p.shards, p.batch
            );
            assert!(p.samples_per_sec() > 0.0);
        }
        let json = batch_json(&points);
        assert_eq!(json.matches("\"method\"").count(), 8);
        for field in [
            "\"n\":",
            "\"q\":",
            "\"batch\":",
            "\"shards\":",
            "\"samples\":",
            "\"samples_per_sec\":",
            "\"wall_time_s\":",
        ] {
            assert_eq!(json.matches(field).count(), 8, "missing {field}");
        }
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn kernel_bench_drains_every_configuration() {
        let points = run_kernel_bench(20_000, &[1, 1024], 42);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].method, "kernel-boxed");
        let total = points[0].q.min(65_536);
        for p in &points {
            assert_eq!(p.shards, 1);
            assert_eq!(p.samples, total, "{} b={}", p.method, p.batch);
            assert!(p.samples_per_sec() > 0.0);
        }
    }

    #[test]
    fn ingest_bench_measures_all_three_windows() {
        let points = run_ingest_bench(6_000, 42);
        assert_eq!(points.len(), 3);
        let by = |m: &str| points.iter().find(|p| p.method == m).unwrap();
        let stream = by("stream-ingest");
        assert_eq!(stream.inserts, 6_000);
        assert!(stream.inserts_per_sec() > 0.0);
        assert!(
            stream.epochs >= 1,
            "6k inserts at delta_limit 4096 must freeze"
        );
        let frozen = by("query-frozen");
        assert_eq!(frozen.samples, 6_000);
        assert!(frozen.samples_per_sec() > 0.0);
        let live = by("ingest+query");
        assert_eq!(live.inserts, 3_000);
        assert!(live.samples_per_sec() > 0.0, "reader starved during ingest");
        let json = ingest_json(&points);
        assert_eq!(json.matches("\"method\"").count(), 3);
        for field in [
            "\"inserts_per_sec\":",
            "\"samples_per_sec\":",
            "\"epochs\":",
        ] {
            assert_eq!(json.matches(field).count(), 3, "missing {field}");
        }
    }

    #[test]
    fn table_formatting_is_stable() {
        let rows = vec![
            Row::new("a", vec![("x", 1.0), ("y", 2.5)]),
            Row::new("bb", vec![("x", 1e-9), ("y", 3e7)]),
        ];
        let s = format_table("demo", &rows);
        assert!(s.contains("## demo"));
        assert!(s.contains("series"));
        assert!(s.lines().count() >= 4);
    }
}
