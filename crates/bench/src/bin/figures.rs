//! Regenerates every figure of the STORM paper as text tables.
//!
//! ```text
//! cargo run --release -p storm-bench --bin figures -- all
//! cargo run --release -p storm-bench --bin figures -- fig3a --n 2000000
//! ```
//!
//! Subcommands: `fig3a fig3b fig5 fig6a fig6b updates io ablate crossover
//! scaling batch kernel faults serve all`. `--n <N>` scales the data set
//! (default 200 000; the paper used ~10⁹ OSM points on a cluster — shapes,
//! not absolute numbers, are the reproduction target). `--seed <S>` changes
//! the workload seed. `batch` additionally writes machine-readable
//! measurements (E12 + the E14 kernel points) to `results/BENCH_results.json`
//! (override the path with `--json <PATH>`). `kernel` runs E14 alone; with
//! `--floor <SAMPLES/S>` it exits non-zero when the best frozen-kernel
//! throughput falls below the floor (the CI bench smoke). `serve` runs E15
//! (multi-session serving vs the naive one-query-at-a-time loop) at
//! 64/256/1024 concurrent sessions — `--smoke` restricts it to 64 — merging
//! its entries into the JSON file; with `--floor <SPEEDUP>` it exits
//! non-zero when serve-vs-naive queries/sec at the largest session count
//! falls below the floor. `ingest` runs E16 (live ingestion through the
//! delta+runs index, alone and under concurrent queries), writing its
//! measurements to the `--json` path (use `results/BENCH_ingest.json`);
//! `--smoke` caps the feed at 30 000 tweets and `--floor <INSERTS/S>`
//! gates the concurrent-ingest rate.

use storm_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut n = 200_000usize;
    let mut seed = 42u64;
    let mut json_path = String::from("results/BENCH_results.json");
    let mut floor: Option<f64> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--floor" => {
                i += 1;
                floor = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--floor needs a samples/sec number")),
                );
            }
            "--n" => {
                i += 1;
                n = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--n needs an integer"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--json" => {
                i += 1;
                json_path = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--json needs a path"));
            }
            cmd if command.is_none() && !cmd.starts_with("--") => {
                command = Some(cmd.to_owned());
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    let command = command.unwrap_or_else(|| usage("missing subcommand"));

    let run = |name: &str| {
        println!("{}", dispatch(name, n, seed, &json_path, floor, smoke));
    };
    match command.as_str() {
        "all" => {
            for name in [
                "fig3a",
                "fig3b",
                "fig5",
                "fig6a",
                "fig6b",
                "updates",
                "io",
                "ablate",
                "crossover",
                "scaling",
                "batch",
                "faults",
                "serve",
                "ingest",
            ] {
                run(name);
            }
        }
        name => run(name),
    }
}

fn dispatch(
    name: &str,
    n: usize,
    seed: u64,
    json_path: &str,
    floor: Option<f64>,
    smoke: bool,
) -> String {
    match name {
        "fig3a" => format_table(
            &format!("Figure 3(a) — online sample generation cost (N={n}, q/N=10%)"),
            &run_fig3a(
                n,
                &[0.0001, 0.001, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10],
                seed,
            ),
        ),
        "fig3b" => format_table(
            &format!("Figure 3(b) — relative error of AVG(altitude) over time (N={n})"),
            &run_fig3b(n, &[0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0], seed),
        ),
        "fig5" => format_table(
            "Figure 5 — online KDE density error vs samples (Atlanta zoom & USA)",
            &run_fig5(n.max(50_000), &[50, 100, 250, 500, 1000, 2500, 5000], seed),
        ),
        "fig6a" => format_table(
            "Figure 6(a) — online approximate trajectory deviation vs sampled fraction",
            &run_fig6a(n.max(50_000), &[0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0], seed),
        ),
        "fig6b" => format_table(
            "Figure 6(b) — Atlanta-snow top-term precision vs sampled tweets",
            &run_fig6b(n.max(50_000), &[10, 25, 50, 100, 250, 500, 1000], seed),
        ),
        "updates" => format_table(
            &format!("E7 — ad-hoc update throughput (N={n})"),
            &run_updates(n, (n / 10).max(100), seed),
        ),
        "io" => format_table(
            &format!("E8 — simulated I/O per method and block size (N={n}, q/N=10%)"),
            &run_io(n, &[64, 256, 1024, 4096], seed),
        ),
        "ablate" => format_table(
            &format!("E9 — RS-tree ablation (N={n}, k=1024)"),
            &run_ablation(n, 1024, seed),
        ),
        "scaling" => format_table(
            &format!("E11 — distributed scaling (N={n}, k=2048)"),
            &run_scaling(n, 2048, seed),
        ),
        "crossover" => format_table(
            &format!("E10 — SampleFirst vs RS-tree crossover (N={n}, k=64)"),
            &run_crossover(n, 64, seed),
        ),
        "batch" => {
            let mut points = run_batch_throughput(n, &[1, 2, 4, 8], &[16, 64, 256], seed);
            let split = points.len();
            points.extend(run_kernel_bench(n, &[1, 256, 1024], seed));
            let json = batch_json(&points);
            if let Some(dir) = std::path::Path::new(json_path).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            match std::fs::write(json_path, &json) {
                Ok(()) => eprintln!("wrote {json_path}"),
                Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
            }
            format_table(
                &format!("E12 — batched scatter-gather throughput (N={n}, q/N=10%, WOR)"),
                &batch_rows(&points[..split]),
            ) + &format_table(
                &format!("E14 — frozen single-thread sampling kernel (N={n}, 1 shard, WOR)"),
                &batch_rows(&points[split..]),
            )
        }
        "kernel" => {
            let points = run_kernel_bench(n, &[1, 256, 1024], seed);
            let best = points
                .iter()
                .filter(|p| p.method == "kernel-frozen")
                .map(storm_bench::BatchPoint::samples_per_sec)
                .fold(0.0f64, f64::max);
            let table = format_table(
                &format!("E14 — frozen single-thread sampling kernel (N={n}, 1 shard, WOR)"),
                &batch_rows(&points),
            );
            if let Some(floor) = floor {
                if best < floor {
                    println!("{table}");
                    eprintln!(
                        "error: frozen kernel throughput {best:.0} samples/s below floor {floor:.0}"
                    );
                    std::process::exit(1);
                }
                eprintln!("kernel floor ok: {best:.0} >= {floor:.0} samples/s");
            }
            table
        }
        "serve" => {
            let sessions: &[usize] = if smoke { &[64] } else { &[64, 256, 1024] };
            let points = run_serve_bench(n, sessions, seed);
            let existing = std::fs::read_to_string(json_path).ok();
            let json = merge_results_json(existing.as_deref(), &serve_json(&points), "sessions");
            if let Some(dir) = std::path::Path::new(json_path).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            match std::fs::write(json_path, &json) {
                Ok(()) => eprintln!("wrote {json_path}"),
                Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
            }
            let table = format_table(
                &format!(
                    "E15 — multi-session serving vs naive one-at-a-time loop (N={n}, {} shards, WR)",
                    points.first().map_or(0, |p| p.shards)
                ),
                &serve_rows(&points),
            );
            if let Some(floor) = floor {
                let top = sessions.iter().copied().max().unwrap_or(0);
                let qps = |method: &str| {
                    points
                        .iter()
                        .find(|p| p.method == method && p.sessions == top)
                        .map_or(0.0, ServePoint::queries_per_sec)
                };
                let speedup = qps("serve") / qps("naive").max(1e-12);
                if speedup < floor {
                    println!("{table}");
                    eprintln!(
                        "error: serve speedup {speedup:.2}x at {top} sessions below floor {floor:.2}x"
                    );
                    std::process::exit(1);
                }
                eprintln!("serve floor ok: {speedup:.2}x >= {floor:.2}x at {top} sessions");
            }
            table
        }
        "faults" => format_table(
            &format!("E13 — degraded-mode recovery vs fault rate (N={n}, 4 shards, WOR)"),
            &run_fault_recovery(n, &[0, 50, 100, 200, 400], seed),
        ),
        "ingest" => {
            let tweets = if smoke { n.min(30_000) } else { n };
            let points = run_ingest_bench(tweets, seed);
            let json = ingest_json(&points);
            // E16 owns its own artifact: never clobber the E12/E15 file
            // when `--json` was left at its default.
            let json_path = if json_path == "results/BENCH_results.json" {
                "results/BENCH_ingest.json"
            } else {
                json_path
            };
            if let Some(dir) = std::path::Path::new(json_path).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            match std::fs::write(json_path, &json) {
                Ok(()) => eprintln!("wrote {json_path}"),
                Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
            }
            let table = format_table(
                &format!("E16 — live ingestion: delta+runs index under load (N={tweets} tweets)"),
                &ingest_rows(&points),
            );
            if let Some(floor) = floor {
                let live = points
                    .iter()
                    .find(|p| p.method == "ingest+query")
                    .map_or(0.0, IngestPoint::inserts_per_sec);
                if live < floor {
                    println!("{table}");
                    eprintln!(
                        "error: concurrent ingest throughput {live:.0} inserts/s below floor {floor:.0}"
                    );
                    std::process::exit(1);
                }
                eprintln!("ingest floor ok: {live:.0} >= {floor:.0} inserts/s");
            }
            table
        }
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: figures <fig3a|fig3b|fig5|fig6a|fig6b|updates|io|ablate|crossover|scaling|batch\
         |kernel|faults|serve|ingest|all> [--n N] [--seed S] [--json PATH] \
         [--floor SAMPLES/S (kernel) | SPEEDUP (serve) | INSERTS/S (ingest)] [--smoke]"
    );
    std::process::exit(2);
}
