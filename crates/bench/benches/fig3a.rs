//! Criterion bench for Figure 3(a): time to draw `k` online samples with
//! each method, fixed query with q/N = 10%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storm_bench::{draw_k, fig3_setup, FIG3A_METHODS};

fn fig3a(c: &mut Criterion) {
    let n = 100_000;
    let mut setup = fig3_setup(n, 0.10, 42);
    let mut group = c.benchmark_group("fig3a");
    group.sample_size(10);
    for method in FIG3A_METHODS {
        for k in [16usize, 256, 1024] {
            group.bench_with_input(BenchmarkId::new(method.to_string(), k), &k, |b, &k| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    draw_k(&mut setup, *method, k, seed)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3a);
criterion_main!(benches);
