//! Criterion bench for the batched sampling kernels and the parallel
//! scatter-gather executor: samples/sec vs batch size × shard count.
//!
//! Two groups:
//!   * `batch_kernel` — single-tree RS sampler, `next_batch(k)` vs the
//!     one-at-a-time loop, isolating the kernel's amortisation.
//!   * `batch_cluster` — sharded stream through the parallel executor vs
//!     the sequential coordinator, isolating the scatter-gather win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use storm_bench::FANOUT;
use storm_core::{DistributedRsTree, RsTreeConfig, SampleMode, SpatialSampler};
use storm_rtree::Item;
use storm_workload::{osm, queries};

const N: usize = 100_000;
const DRAW: usize = 4_096;

fn batch_kernel(c: &mut Criterion) {
    let data = osm::generate(N, 42);
    let (query, _q) = queries::rect_with_selectivity(&data.items, 0.10, 42 ^ 0xABCD).unwrap();
    let mut rs = storm_core::RsTree::bulk_load(data.items, RsTreeConfig::with_fanout(FANOUT));
    let mut rng = StdRng::seed_from_u64(7);
    rs.prefill(&mut rng);
    let mut group = c.benchmark_group("batch_kernel");
    group.sample_size(10);
    for batch in [1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("rs_wor", batch), &batch, |b, &batch| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut s = rs.sampler(query, SampleMode::WithoutReplacement);
                let mut buf: Vec<Item<2>> = Vec::with_capacity(batch);
                let mut drawn = 0usize;
                while drawn < DRAW {
                    buf.clear();
                    let got = s.next_batch(&mut rng, &mut buf, batch.min(DRAW - drawn));
                    if got == 0 {
                        break;
                    }
                    drawn += got;
                }
                drawn
            });
        });
    }
    group.finish();
}

fn batch_cluster(c: &mut Criterion) {
    let data = osm::generate(N, 42);
    let (query, _q) = queries::rect_with_selectivity(&data.items, 0.10, 42 ^ 0xABCD).unwrap();
    let mut group = c.benchmark_group("batch_cluster");
    group.sample_size(10);
    for shards in [1usize, 4, 8] {
        let mut cluster = DistributedRsTree::bulk_load(
            data.items.clone(),
            shards,
            RsTreeConfig::with_fanout(FANOUT),
        );
        let mut rng = StdRng::seed_from_u64(7 ^ shards as u64);
        cluster.prefill(&mut rng);

        // Sequential baseline: one coordinator pass per draw.
        group.bench_with_input(BenchmarkId::new("sequential", shards), &shards, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut s = cluster.sampler(query, SampleMode::WithoutReplacement);
                let mut drawn = 0usize;
                while drawn < DRAW && s.next_sample(&mut rng).is_some() {
                    drawn += 1;
                }
                drawn
            });
        });

        // Parallel batched scatter-gather over the same shards.
        let parallel = cluster.into_parallel();
        for batch in [16usize, 256] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel/k={batch}"), shards),
                &batch,
                |b, &batch| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut rng = StdRng::seed_from_u64(seed);
                        let mut s = parallel.sampler(query, SampleMode::WithoutReplacement, seed);
                        let mut buf: Vec<Item<2>> = Vec::with_capacity(batch);
                        let mut drawn = 0usize;
                        while drawn < DRAW {
                            buf.clear();
                            let got = s.next_batch(&mut rng, &mut buf, batch.min(DRAW - drawn));
                            if got == 0 {
                                break;
                            }
                            drawn += got;
                        }
                        drawn
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, batch_kernel, batch_cluster);
criterion_main!(benches);
