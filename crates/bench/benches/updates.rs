//! Criterion bench for E7: ad-hoc update cost on the ST-indexes (the
//! paper's "updates" demo component).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use storm_core::{LsTree, RsTree, RsTreeConfig};
use storm_geo::Point2;
use storm_rtree::{BulkMethod, Item, RTree, RTreeConfig};
use storm_workload::osm;

const N: usize = 50_000;

fn updates(c: &mut Criterion) {
    let data = osm::generate(N, 42);
    let mut group = c.benchmark_group("updates");
    group.sample_size(20);

    group.bench_function("rtree-insert+delete", |b| {
        let mut tree = RTree::bulk_load(
            data.items.clone(),
            RTreeConfig::with_fanout(64),
            BulkMethod::Hilbert,
        );
        let mut next = N as u64;
        b.iter(|| {
            next += 1;
            let item = Item::new(Point2::xy((next % 360) as f64 - 180.0, 0.0), next);
            tree.insert(item);
            assert!(tree.remove(&item.point, item.id));
        });
    });

    group.bench_function("ls-insert+delete", |b| {
        let mut ls = LsTree::bulk_load(data.items.clone(), RTreeConfig::with_fanout(64), 42);
        let mut next = N as u64;
        b.iter(|| {
            next += 1;
            let item = Item::new(Point2::xy((next % 360) as f64 - 180.0, 0.0), next);
            ls.insert(item);
            assert!(ls.remove(&item.point, item.id));
        });
    });

    group.bench_function("rs-insert+delete(buffered)", |b| {
        let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(64));
        let mut rng = StdRng::seed_from_u64(7);
        rs.prefill(&mut rng);
        let mut next = N as u64;
        b.iter(|| {
            next += 1;
            let item = Item::new(Point2::xy((next % 360) as f64 - 180.0, 0.0), next);
            rs.insert(item, &mut rng);
            assert!(rs.remove(&item.point, item.id, &mut rng));
        });
    });
    group.finish();
}

criterion_group!(benches, updates);
criterion_main!(benches);
