//! Criterion bench for the substrates: Hilbert keys, R-tree construction,
//! range queries, and canonical sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storm_geo::curve::{hilbert_key, HilbertCurve, SpaceFillingCurve};
use storm_rtree::{BulkMethod, RTree, RTreeConfig};
use storm_workload::{osm, queries};

fn substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    group.bench_function("hilbert-2d-key", |b| {
        let curve = HilbertCurve::new(16).unwrap();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            curve.index_of_cell(i & 0xFFFF, (i >> 16) & 0xFFFF)
        });
    });

    group.bench_function("hilbert-3d-key", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            hilbert_key([i & 0xFFFF, (i >> 8) & 0xFFFF, (i >> 16) & 0xFFFF], 21)
        });
    });

    let data = osm::generate(100_000, 42);
    for method in [BulkMethod::Str, BulkMethod::Hilbert, BulkMethod::ZOrder] {
        group.bench_with_input(
            BenchmarkId::new("bulk-load-100k", format!("{method:?}")),
            &method,
            |b, &method| {
                b.iter(|| {
                    RTree::bulk_load(data.items.clone(), RTreeConfig::with_fanout(64), method).len()
                });
            },
        );
    }

    let tree = RTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(64),
        BulkMethod::Hilbert,
    );
    let (query, _q) = queries::rect_with_selectivity(&data.items, 0.05, 7).unwrap();
    group.bench_function("range-report-5pct", |b| {
        b.iter(|| tree.query(&query).len());
    });
    group.bench_function("count-5pct", |b| {
        b.iter(|| tree.count_in(&query));
    });
    group.bench_function("canonical-set-5pct", |b| {
        b.iter(|| tree.canonical_set(&query).total);
    });
    group.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
