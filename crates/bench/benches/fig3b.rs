//! Criterion bench for Figure 3(b): time for the online AVG(altitude)
//! estimate to absorb a batch of samples through the LS/RS samplers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use storm_bench::fig3_setup;
use storm_core::{SampleMode, SpatialSampler};
use storm_estimators::OnlineStat;

fn fig3b(c: &mut Criterion) {
    let mut setup = fig3_setup(100_000, 0.10, 42);
    let mut group = c.benchmark_group("fig3b");
    group.sample_size(20);

    group.bench_function("ls-avg-512-samples", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stat = OnlineStat::without_replacement(setup.q);
            let mut s = setup.ls.sampler(setup.query);
            for _ in 0..512 {
                let item = s.next_sample(&mut rng).expect("q >> 512");
                stat.push(setup.data.altitudes[item.id as usize]);
            }
            stat.mean_estimate()
        });
    });

    group.bench_function("rs-avg-512-samples", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stat = OnlineStat::without_replacement(setup.q);
            let mut s = setup
                .rs
                .sampler(setup.query, SampleMode::WithoutReplacement);
            for _ in 0..512 {
                let item = s.next_sample(&mut rng).expect("q >> 512");
                stat.push(setup.data.altitudes[item.id as usize]);
            }
            stat.mean_estimate()
        });
    });
    group.finish();
}

criterion_group!(benches, fig3b);
criterion_main!(benches);
