//! Criterion bench for the online estimators (the feature module): the
//! per-sample ingest cost of each built-in analytic.

use criterion::{criterion_group, criterion_main, Criterion};
use storm_estimators::cluster::OnlineKMeans;
use storm_estimators::kde::{KdeEstimator, Kernel};
use storm_estimators::text::SpaceSaving;
use storm_estimators::trajectory::TrajectoryBuilder;
use storm_estimators::OnlineStat;
use storm_geo::{Point2, Rect2, StPoint};

fn estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");

    group.bench_function("online-stat-push", |b| {
        let mut stat = OnlineStat::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.7;
            stat.push(x % 37.0);
            stat.mean()
        });
    });

    group.bench_function("kde-push-64x64", |b| {
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0));
        let mut kde = KdeEstimator::new(bounds, 64, 64, Kernel::Epanechnikov { bandwidth: 5.0 });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            kde.push(&Point2::xy((i % 100) as f64, (i * 7 % 100) as f64));
            kde.n()
        });
    });

    group.bench_function("kmeans-push-k8", |b| {
        let mut km = OnlineKMeans::new(8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            km.push(&Point2::xy((i % 97) as f64, (i * 13 % 89) as f64));
            km.n()
        });
    });

    group.bench_function("spacesaving-push-text", |b| {
        let mut ss = SpaceSaving::new(256);
        let texts = [
            "snow and ice everywhere tonight",
            "power outage on the east side",
            "coffee before work this morning",
            "traffic is completely stuck again",
        ];
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            ss.push_text(texts[i % texts.len()]);
            ss.n()
        });
    });

    group.bench_function("trajectory-push", |b| {
        let mut t = TrajectoryBuilder::new();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            t.push(StPoint::new(
                i as f64 * 0.01,
                (i % 50) as f64,
                i * 37 % 100_000,
            ));
            t.len()
        });
    });
    group.finish();
}

criterion_group!(benches, estimators);
criterion_main!(benches);
