//! The `StormEngine` facade.

use std::collections::HashMap;

use rand::{rngs::StdRng, SeedableRng};
use storm_connector::{DataSource, FieldMapping, StRecord};
use storm_query::{plan::plan, Query};
use storm_store::DocId;

use crate::dataset::{Dataset, DatasetConfig};
use crate::exec;
use crate::session::{CancelToken, Progress, QueryOutcome};
use crate::EngineError;

/// Summary of a data import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportReport {
    /// Records successfully imported and indexed.
    pub imported: usize,
    /// Records skipped by a lenient mapping.
    pub skipped: usize,
}

/// The STORM engine: data sets, import, updates, and online queries.
///
/// All randomness flows through one seeded generator, so an engine built
/// with the same seed over the same data replays identically — essential
/// for the reproducibility of the experiments in `storm-bench`.
#[derive(Debug)]
pub struct StormEngine {
    datasets: HashMap<String, Dataset>,
    rng: StdRng,
}

impl StormEngine {
    /// Creates an engine with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        StormEngine {
            datasets: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Registers a data set built from already-mapped records.
    pub fn create_dataset(
        &mut self,
        name: &str,
        records: Vec<StRecord>,
        cfg: DatasetConfig,
    ) -> Result<&Dataset, EngineError> {
        if self.datasets.contains_key(name) {
            return Err(EngineError::DatasetExists(name.to_owned()));
        }
        let ds = Dataset::build(name, records, cfg);
        Ok(self.datasets.entry(name.to_owned()).or_insert(ds))
    }

    /// Imports a data source through the connector: stream records, map
    /// them onto the spatio-temporal schema, build storage and indexes —
    /// the paper's "data import" demo component.
    pub fn import(
        &mut self,
        name: &str,
        source: &mut dyn DataSource,
        mapping: &FieldMapping,
        cfg: DatasetConfig,
    ) -> Result<ImportReport, EngineError> {
        if self.datasets.contains_key(name) {
            return Err(EngineError::DatasetExists(name.to_owned()));
        }
        let mut records = Vec::new();
        let mut skipped = 0usize;
        let mut record_no = 0usize;
        while let Some(raw) = source.next_record() {
            record_no += 1;
            let raw = raw?;
            match mapping.extract(&raw, record_no)? {
                Some(record) => records.push(record),
                None => skipped += 1,
            }
        }
        let imported = records.len();
        let ds = Dataset::build(name, records, cfg);
        self.datasets.insert(name.to_owned(), ds);
        Ok(ImportReport { imported, skipped })
    }

    /// Registers an already-built data set (used by persistence).
    pub(crate) fn insert_dataset(&mut self, name: &str, ds: Dataset) {
        self.datasets.insert(name.to_owned(), ds);
    }

    /// Names of all registered data sets.
    pub fn dataset_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.datasets.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// A registered data set.
    pub fn dataset(&self, name: &str) -> Result<&Dataset, EngineError> {
        self.datasets
            .get(name)
            .ok_or_else(|| EngineError::NoSuchDataset(name.to_owned()))
    }

    /// Installs a fault-injection hook on a data set's storage read path
    /// (chaos/test runs); pass the plan as `Arc<FaultPlan>`. Queries keep
    /// running under faults and report `io_faults` in their outcomes.
    pub fn set_fault_hook(
        &mut self,
        dataset: &str,
        hook: std::sync::Arc<dyn crate::FaultHook>,
    ) -> Result<(), EngineError> {
        self.datasets
            .get_mut(dataset)
            .ok_or_else(|| EngineError::NoSuchDataset(dataset.to_owned()))?
            .set_fault_hook(hook);
        Ok(())
    }

    /// Removes a data set's storage fault hook.
    pub fn clear_fault_hook(&mut self, dataset: &str) -> Result<(), EngineError> {
        self.datasets
            .get_mut(dataset)
            .ok_or_else(|| EngineError::NoSuchDataset(dataset.to_owned()))?
            .clear_fault_hook();
        Ok(())
    }

    /// Inserts one record into a data set (the update manager keeps every
    /// index consistent).
    pub fn insert(&mut self, dataset: &str, record: StRecord) -> Result<DocId, EngineError> {
        let rng = &mut self.rng;
        let ds = self
            .datasets
            .get_mut(dataset)
            .ok_or_else(|| EngineError::NoSuchDataset(dataset.to_owned()))?;
        Ok(ds.insert(record, rng))
    }

    /// Inserts a batch of records into a data set — the streaming-ingest
    /// entry point: a live feed (e.g. `storm_workload::tweets::TweetStream`
    /// arrival batches) is absorbed one batch at a time while queries
    /// between batches see every record inserted so far.
    pub fn insert_batch(
        &mut self,
        dataset: &str,
        records: Vec<StRecord>,
    ) -> Result<Vec<DocId>, EngineError> {
        let rng = &mut self.rng;
        let ds = self
            .datasets
            .get_mut(dataset)
            .ok_or_else(|| EngineError::NoSuchDataset(dataset.to_owned()))?;
        Ok(records.into_iter().map(|r| ds.insert(r, rng)).collect())
    }

    /// Removes one record from a data set.
    pub fn remove(&mut self, dataset: &str, id: DocId) -> Result<bool, EngineError> {
        let rng = &mut self.rng;
        let ds = self
            .datasets
            .get_mut(dataset)
            .ok_or_else(|| EngineError::NoSuchDataset(dataset.to_owned()))?;
        Ok(ds.remove(id, rng))
    }

    /// Parses, plans, and runs a STORM-QL query to completion (no progress
    /// callback, no cancellation).
    pub fn execute(&mut self, ql: &str) -> Result<QueryOutcome, EngineError> {
        self.execute_with(ql, &CancelToken::new(), &mut |_| {})
    }

    /// Parses, plans, and runs a STORM-QL query with progress streaming and
    /// cooperative cancellation — the full interactive lifecycle.
    pub fn execute_with(
        &mut self,
        ql: &str,
        cancel: &CancelToken,
        on_progress: &mut dyn FnMut(&Progress),
    ) -> Result<QueryOutcome, EngineError> {
        let query = storm_query::parse(ql)?;
        self.execute_query(query, cancel, on_progress)
    }

    /// Plans and runs an already-parsed query.
    pub fn execute_query(
        &mut self,
        query: Query,
        cancel: &CancelToken,
        on_progress: &mut dyn FnMut(&Progress),
    ) -> Result<QueryOutcome, EngineError> {
        let rng = &mut self.rng;
        let ds = self
            .datasets
            .get_mut(&query.dataset)
            .ok_or_else(|| EngineError::NoSuchDataset(query.dataset.clone()))?;
        let stats = ds.stats();
        // Exact q from aggregate counts (an O(r(N)) count-only pass).
        let probe =
            storm_geo::StQuery::new(query.range.unwrap_or(stats.bounds), query.time_range());
        let q_est = match probe.to_rect3() {
            Some(rect3) => ds.exact_count(&rect3),
            None => 0,
        };
        let plan = plan(query, &stats, q_est)?;
        exec::run_plan(ds, &plan, rng, cancel, on_progress)
    }

    /// `EXPLAIN`: parses and plans a query without running it, returning a
    /// human-readable report of what the optimizer saw and chose.
    pub fn explain(&self, ql: &str) -> Result<String, EngineError> {
        use std::fmt::Write;
        use storm_core::cost::{self, CostInputs};
        use storm_core::SamplerKind;

        let query = storm_query::parse(ql)?;
        let ds = self.dataset(&query.dataset)?;
        let stats = ds.stats();
        let plan = self.plan_only(query)?;
        let inputs = CostInputs {
            n: stats.n,
            q_est: plan.q_est,
            k_est: plan.k_est,
            block: stats.block,
            height: stats.height,
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dataset: {} (N={}, height={}, B={})",
            plan.query.dataset, stats.n, stats.height, stats.block
        );
        let _ = writeln!(out, "task:    {:?}", plan.query.task);
        let _ = writeln!(
            out,
            "range:   {} | time {:?}",
            plan.st_query.rect, plan.query.time
        );
        let _ = writeln!(
            out,
            "q (exact from counts) = {} | expected k = {}",
            plan.q_est, plan.k_est
        );
        let _ = writeln!(out, "estimated I/O cost per method:");
        for kind in [
            SamplerKind::QueryFirst,
            SamplerKind::SampleFirst,
            SamplerKind::RandomPath,
            SamplerKind::LsTree,
            SamplerKind::RsTree,
        ] {
            let cost = cost::io_cost(kind, &inputs);
            let marker = if kind == plan.sampler {
                "  ← chosen"
            } else {
                ""
            };
            let _ = writeln!(out, "  {kind:<12} {cost:>14.1}{marker}");
        }
        if plan.query.method.is_some() {
            let _ = writeln!(out, "(method forced by the query's METHOD clause)");
        }
        Ok(out)
    }

    /// Convenience used by tests and benches: plan a query without running
    /// it (exposes the optimizer's choice).
    pub fn plan_only(&self, query: Query) -> Result<storm_query::Plan, EngineError> {
        let ds = self.dataset(&query.dataset)?;
        let stats = ds.stats();
        let probe =
            storm_geo::StQuery::new(query.range.unwrap_or(stats.bounds), query.time_range());
        let q_est = match probe.to_rect3() {
            Some(rect3) => ds.exact_count(&rect3),
            None => 0,
        };
        Ok(plan(query, &stats, q_est)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{StopReason, TaskResult};
    use storm_geo::StPoint;
    use storm_store::Value;

    fn weather_records(n: usize) -> Vec<StRecord> {
        (0..n)
            .map(|i| StRecord {
                point: StPoint::new((i % 100) as f64, ((i / 100) % 100) as f64, i as i64),
                body: Value::object([
                    ("temp".into(), Value::Float(20.0 + (i % 10) as f64)),
                    ("text".into(), Value::from("sunny day in slc")),
                    ("user".into(), Value::from(format!("u{}", i % 7))),
                ]),
            })
            .collect()
    }

    fn engine_with_data(n: usize) -> StormEngine {
        let mut e = StormEngine::new(42);
        e.create_dataset(
            "weather",
            weather_records(n),
            DatasetConfig {
                fanout: 16,
                ..Default::default()
            },
        )
        .unwrap();
        e
    }

    #[test]
    fn avg_estimate_converges_to_truth() {
        let mut e = engine_with_data(10_000);
        let outcome = e
            .execute("ESTIMATE AVG(temp) FROM weather SAMPLES 2000")
            .unwrap();
        let est = outcome.estimate().unwrap();
        // True mean of 20 + (i % 10) = 24.5.
        assert!(
            (est.value - 24.5).abs() < 0.3,
            "estimate {} too far from 24.5",
            est.value
        );
        assert_eq!(outcome.reason, StopReason::SampleBudget);
        assert!(outcome.samples >= 2000);
        assert!(outcome.io_reads > 0);
    }

    #[test]
    fn error_target_stops_early() {
        let mut e = engine_with_data(20_000);
        let outcome = e
            .execute("ESTIMATE AVG(temp) FROM weather CONFIDENCE 0.95 ERROR 0.02")
            .unwrap();
        assert_eq!(outcome.reason, StopReason::QualityReached);
        let est = outcome.estimate().unwrap();
        assert!(est.relative_error(0.95) <= 0.02 * 1.05);
        assert!(
            (outcome.samples as usize) < 20_000 / 2,
            "should stop well before exhaustion, used {}",
            outcome.samples
        );
    }

    #[test]
    fn count_is_exact_and_immediate() {
        let mut e = engine_with_data(5_000);
        let outcome = e
            .execute("ESTIMATE COUNT FROM weather RANGE 0 0 49 99")
            .unwrap();
        match outcome.result {
            TaskResult::Count { q } => assert_eq!(q, 2500),
            other => panic!("expected count, got {other:?}"),
        }
        assert_eq!(outcome.samples, 0);
    }

    #[test]
    fn sum_scales_with_q() {
        let mut e = engine_with_data(5_000);
        let outcome = e
            .execute("ESTIMATE SUM(temp) FROM weather SAMPLES 3000")
            .unwrap();
        let est = outcome.estimate().unwrap();
        let truth: f64 = (0..5000).map(|i| 20.0 + (i % 10) as f64).sum();
        assert!(
            (est.value - truth).abs() / truth < 0.02,
            "sum {} vs {truth}",
            est.value
        );
    }

    #[test]
    fn every_method_answers_the_same_query() {
        let mut e = engine_with_data(4_000);
        let mut means = Vec::new();
        for method in [
            "queryfirst",
            "samplefirst",
            "randompath",
            "lstree",
            "rstree",
        ] {
            let outcome = e
                .execute(&format!(
                    "ESTIMATE AVG(temp) FROM weather RANGE 10 10 80 80 SAMPLES 800 METHOD {method}"
                ))
                .unwrap_or_else(|err| panic!("{method}: {err}"));
            means.push(outcome.estimate().unwrap().value);
        }
        for m in &means {
            assert!((m - means[0]).abs() < 1.0, "means diverge: {means:?}");
        }
    }

    #[test]
    fn group_by_estimates_every_group() {
        let mut e = engine_with_data(7_000);
        let outcome = e
            .execute("ESTIMATE AVG(temp) FROM weather BY user SAMPLES 3500")
            .unwrap();
        match outcome.result {
            TaskResult::Groups { groups, .. } => {
                assert_eq!(groups.len(), 7, "one group per user");
                for (key, est) in &groups {
                    assert!(key.starts_with('u'));
                    // Every user's true mean is within a few degrees of the
                    // global mean 24.5 (temp = 20 + i%10, users = i%7).
                    assert!((est.value - 24.5).abs() < 3.0, "{key}: {}", est.value);
                    assert!(est.n > 100);
                }
            }
            other => panic!("expected groups, got {other:?}"),
        }
        // Quality-target mode: all substantial groups converge.
        let outcome = e
            .execute("ESTIMATE AVG(temp) FROM weather BY user CONFIDENCE 0.95 ERROR 0.05")
            .unwrap();
        assert_eq!(outcome.reason, StopReason::QualityReached);
    }

    #[test]
    fn median_and_quantile_queries_converge() {
        let mut e = engine_with_data(10_000);
        // temp = 20 + (i % 10): median = 24 or 25, q90 ≈ 29.
        let outcome = e
            .execute("ESTIMATE MEDIAN(temp) FROM weather SAMPLES 3000")
            .unwrap();
        let med = outcome.estimate().unwrap();
        assert!((24.0..=25.0).contains(&med.value), "median {}", med.value);
        let outcome = e
            .execute("ESTIMATE QUANTILE(temp, 0.9) FROM weather SAMPLES 3000")
            .unwrap();
        let q90 = outcome.estimate().unwrap();
        assert!((28.0..=29.0).contains(&q90.value), "q90 {}", q90.value);
        // Quality-target mode works for quantiles too.
        let outcome = e
            .execute("ESTIMATE MEDIAN(temp) FROM weather CONFIDENCE 0.95 ERROR 0.05")
            .unwrap();
        assert_eq!(outcome.reason, StopReason::QualityReached);
    }

    #[test]
    fn density_query_runs() {
        let mut e = engine_with_data(5_000);
        let outcome = e
            .execute("DENSITY FROM weather GRID 16 16 SAMPLES 1000")
            .unwrap();
        match outcome.result {
            TaskResult::Density { grid, map, .. } => {
                assert_eq!(grid, (16, 16));
                assert_eq!(map.len(), 256);
                assert!(map.iter().any(|&v| v > 0.0));
            }
            other => panic!("expected density, got {other:?}"),
        }
    }

    #[test]
    fn cluster_query_runs() {
        let mut e = engine_with_data(5_000);
        let outcome = e.execute("CLUSTER 3 FROM weather SAMPLES 500").unwrap();
        match outcome.result {
            TaskResult::Cluster { centers, .. } => assert_eq!(centers.len(), 3),
            other => panic!("expected clusters, got {other:?}"),
        }
    }

    #[test]
    fn trajectory_query_filters_by_user() {
        let mut e = engine_with_data(2_000);
        let outcome = e.execute("TRAJECTORY u3 FROM weather").unwrap();
        match outcome.result {
            TaskResult::Trajectory { waypoints } => {
                // u3 ⇔ i % 7 == 3 → ~285 points; WOR exhausts all 2000.
                assert!(!waypoints.is_empty());
                // Waypoints are time-ordered.
                for w in waypoints.windows(2) {
                    assert!(w[0].t <= w[1].t);
                }
            }
            other => panic!("expected trajectory, got {other:?}"),
        }
    }

    #[test]
    fn terms_query_surfaces_vocabulary() {
        let mut e = engine_with_data(2_000);
        let outcome = e.execute("TERMS 3 FROM weather SAMPLES 500").unwrap();
        match outcome.result {
            TaskResult::Terms { top } => {
                let words: Vec<&str> = top.iter().map(|h| h.term.as_str()).collect();
                assert!(words.contains(&"sunny"), "{words:?}");
            }
            other => panic!("expected terms, got {other:?}"),
        }
    }

    #[test]
    fn time_budget_is_respected() {
        let mut e = engine_with_data(50_000);
        // With replacement the stream never exhausts, so the time budget is
        // the only stopping rule in play — the batched kernels are fast
        // enough to drain a 50k WOR result inside 30ms.
        let outcome = e
            .execute("ESTIMATE AVG(temp) FROM weather WITHIN 30 MODE WR")
            .unwrap();
        assert_eq!(outcome.reason, StopReason::TimeBudget);
        assert!(outcome.elapsed.as_millis() < 500);
    }

    #[test]
    fn cancellation_stops_the_loop() {
        let mut e = engine_with_data(10_000);
        let cancel = CancelToken::new();
        let cancel2 = cancel.clone();
        let mut ticks = 0;
        let outcome = e
            .execute_with("ESTIMATE AVG(temp) FROM weather", &cancel, &mut |_p| {
                ticks += 1;
                if ticks >= 2 {
                    cancel2.cancel();
                }
            })
            .unwrap();
        assert_eq!(outcome.reason, StopReason::Cancelled);
        assert!(outcome.samples < 10_000);
    }

    #[test]
    fn updates_change_query_answers() {
        let mut e = engine_with_data(1_000);
        let before = e
            .execute("ESTIMATE COUNT FROM weather RANGE 200 200 300 300")
            .unwrap();
        assert!(matches!(before.result, TaskResult::Count { q: 0 }));
        // Insert 5 records in that region.
        for j in 0..5 {
            e.insert(
                "weather",
                StRecord {
                    point: StPoint::new(250.0 + j as f64, 250.0, 10 + j),
                    body: Value::object([("temp".into(), Value::Float(99.0))]),
                },
            )
            .unwrap();
        }
        let after = e
            .execute("ESTIMATE COUNT FROM weather RANGE 200 200 300 300")
            .unwrap();
        assert!(matches!(after.result, TaskResult::Count { q: 5 }));
    }

    #[test]
    fn streamed_tweet_feed_is_queryable_between_batches() {
        use storm_workload::tweets::{TweetConfig, TweetStream};
        // A true streaming scenario: open the synthetic firehose, absorb it
        // batch by batch through the update manager, and query mid-stream —
        // every count must equal exactly the records delivered so far.
        let cfg = TweetConfig {
            users: 20,
            tweets: 2_000,
            ..Default::default()
        };
        let mut e = StormEngine::new(11);
        e.create_dataset("tweets", Vec::new(), DatasetConfig::default())
            .unwrap();
        let mut delivered = 0usize;
        for batch in TweetStream::new(&cfg, 500) {
            let arrived = batch.len();
            delivered += arrived;
            let ids = e.insert_batch("tweets", batch).unwrap();
            assert_eq!(ids.len(), arrived);
            let outcome = e.execute("ESTIMATE COUNT FROM tweets").unwrap();
            match outcome.result {
                TaskResult::Count { q } => assert_eq!(q, delivered),
                other => panic!("expected count, got {other:?}"),
            }
        }
        assert_eq!(delivered, 2_000);
        // The fully-streamed data set answers the same aggregate as a
        // bulk-loaded one over the identical timeline.
        let mut bulk = StormEngine::new(11);
        bulk.create_dataset(
            "tweets",
            storm_workload::tweets::generate(&cfg),
            DatasetConfig::default(),
        )
        .unwrap();
        let a = e.execute("ESTIMATE COUNT FROM tweets").unwrap();
        let b = bulk.execute("ESTIMATE COUNT FROM tweets").unwrap();
        match (a.result, b.result) {
            (TaskResult::Count { q: qa }, TaskResult::Count { q: qb }) => assert_eq!(qa, qb),
            other => panic!("expected counts, got {other:?}"),
        }
    }

    #[test]
    fn missing_dataset_and_bad_attribute_error() {
        let mut e = engine_with_data(1_000);
        assert!(matches!(
            e.execute("ESTIMATE COUNT FROM nope"),
            Err(EngineError::NoSuchDataset(_))
        ));
        assert!(matches!(
            e.execute("ESTIMATE AVG(nonexistent) FROM weather SAMPLES 500"),
            Err(EngineError::BadAttribute(_))
        ));
    }

    #[test]
    fn import_via_csv_connector() {
        let csv = "lon,lat,ts,temp\n\
                   -111.9,40.7,100,21.5\n\
                   -111.8,40.8,200,22.5\n\
                   bad,40.9,300,23.5\n";
        let mut source = storm_connector::CsvSource::new(csv.as_bytes());
        let mapping = FieldMapping::new("lon", "lat", Some("ts")).lenient();
        let mut e = StormEngine::new(7);
        let report = e
            .import("obs", &mut source, &mapping, DatasetConfig::default())
            .unwrap();
        assert_eq!(
            report,
            ImportReport {
                imported: 2,
                skipped: 1
            }
        );
        let outcome = e.execute("ESTIMATE AVG(temp) FROM obs").unwrap();
        assert!((outcome.estimate().unwrap().value - 22.0).abs() < 1e-9);
        assert_eq!(outcome.reason, StopReason::Exhausted);
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = || {
            let mut e = engine_with_data(3_000);
            e.execute("ESTIMATE AVG(temp) FROM weather SAMPLES 100")
                .unwrap()
                .estimate()
                .unwrap()
                .value
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queries_survive_storage_faults_and_report_them() {
        use std::sync::Arc;
        let mut e = engine_with_data(3_000);
        e.set_fault_hook(
            "weather",
            Arc::new(crate::FaultPlan::seeded(9).with_transient_io(400)),
        )
        .unwrap();
        let outcome = e
            .execute("ESTIMATE AVG(temp) FROM weather SAMPLES 500")
            .unwrap();
        // 40% transient faults with bounded retries: the query still
        // completes near the truth, and the incidents are reported.
        assert!(outcome.io_faults > 0, "chaos run recorded no faults");
        assert!(outcome.is_degraded());
        assert!((outcome.estimate().unwrap().value - 24.5).abs() < 1.5);
        // Replay determinism: the same plan yields the same fault count.
        let mut e2 = engine_with_data(3_000);
        e2.set_fault_hook(
            "weather",
            Arc::new(crate::FaultPlan::seeded(9).with_transient_io(400)),
        )
        .unwrap();
        let outcome2 = e2
            .execute("ESTIMATE AVG(temp) FROM weather SAMPLES 500")
            .unwrap();
        assert_eq!(outcome.io_faults, outcome2.io_faults);
        assert_eq!(
            outcome.estimate().unwrap().value,
            outcome2.estimate().unwrap().value
        );
        // Clearing the hook restores clean execution.
        e.clear_fault_hook("weather").unwrap();
        let clean = e
            .execute("ESTIMATE AVG(temp) FROM weather SAMPLES 200")
            .unwrap();
        assert_eq!(clean.io_faults, 0);
        assert!(!clean.is_degraded());
        assert!(e
            .set_fault_hook("nope", Arc::new(crate::FaultPlan::seeded(1)))
            .is_err());
    }
}
