//! Data sets: storage + ST-indexing for one imported source.

use std::collections::HashMap;
use std::sync::Arc;

use rand::Rng;
use storm_connector::StRecord;
use storm_core::{FrozenRsTree, LsTree, RsTree, RsTreeConfig};
use storm_geo::{Point2, Rect2, StPoint};
use storm_query::DatasetStats;
use storm_rtree::{Item, RTreeConfig};
use storm_store::{Collection, DocId};

/// Per-data-set configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// R-tree fanout / block size `B`.
    pub fanout: usize,
    /// Whether to maintain the LS-tree forest alongside the RS-tree
    /// (costs ~2× index memory; required for `METHOD lstree`).
    pub enable_ls: bool,
    /// The record field holding short text (for `TERMS`).
    pub text_field: Option<String>,
    /// The record field identifying the user/entity (for `TRAJECTORY`).
    pub user_field: Option<String>,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            fanout: 64,
            enable_ls: true,
            text_field: Some("text".into()),
            user_field: Some("user".into()),
        }
    }
}

/// One imported data set: the document collection, the raw scan file, and
/// the sampling indexes.
#[derive(Debug)]
pub struct Dataset {
    name: String,
    pub(crate) collection: Collection,
    /// The flat "scan file": every live item, for SampleFirst probes.
    pub(crate) items: Vec<Item<3>>,
    /// id → position in `items` (for O(1) delete).
    item_pos: HashMap<u64, usize>,
    pub(crate) rs: RsTree<3>,
    pub(crate) ls: Option<LsTree<3>>,
    /// Read-optimized snapshot of `rs` serving RS-tree sampling plans;
    /// invalidated by updates and rebuilt on the next query.
    pub(crate) frozen: Option<Arc<FrozenRsTree<3>>>,
    pub(crate) cfg: DatasetConfig,
    /// Cached 2-D extent (grow-only; queries use it for defaults).
    bounds2: Option<Rect2>,
}

impl Dataset {
    /// Builds a data set from mapped records.
    pub fn build(name: impl Into<String>, records: Vec<StRecord>, cfg: DatasetConfig) -> Self {
        let name = name.into();
        let mut collection = Collection::with_block_size(&name, cfg.fanout);
        let mut items = Vec::with_capacity(records.len());
        let mut item_pos = HashMap::with_capacity(records.len());
        let mut bounds2: Option<Rect2> = None;
        for record in records {
            let id = collection.insert(record.body);
            let item = Item::new(record.point.to_point3(), id.0);
            item_pos.insert(id.0, items.len());
            items.push(item);
            bounds2 = Some(match bounds2 {
                None => Rect2::from_point(record.point.xy),
                Some(b) => b.enlarged_to_point(&record.point.xy),
            });
        }
        let rs = RsTree::bulk_load(items.clone(), RsTreeConfig::with_fanout(cfg.fanout));
        let ls = cfg.enable_ls.then(|| {
            LsTree::bulk_load(
                items.clone(),
                RTreeConfig::with_fanout(cfg.fanout),
                0x5702_u64,
            )
        });
        let frozen = Some(Arc::new(rs.freeze()));
        Dataset {
            name,
            collection,
            items,
            item_pos,
            rs,
            ls,
            frozen,
            cfg,
            bounds2,
        }
    }

    /// The data set name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configuration this data set was built with.
    pub fn config(&self) -> &DatasetConfig {
        &self.cfg
    }

    /// The 2-D spatial extent (grow-only under updates).
    pub fn bounds2(&self) -> Rect2 {
        self.bounds2
            .unwrap_or_else(|| Rect2::from_point(Point2::xy(0.0, 0.0)))
    }

    /// Statistics for the optimizer.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            n: self.items.len(),
            bounds: self.bounds2(),
            height: self.rs.tree().height(),
            block: self.cfg.fanout,
        }
    }

    /// The RS-tree (always present).
    pub fn rs(&self) -> &RsTree<3> {
        &self.rs
    }

    /// Mutable RS-tree access (for opening boxed RS sampling streams).
    /// Invalidates the frozen snapshot: the caller may mutate buffers or
    /// structure, and a stale arena must never serve a later query.
    pub fn rs_mut(&mut self) -> &mut RsTree<3> {
        self.frozen = None;
        &mut self.rs
    }

    /// The frozen RS-tree snapshot, rebuilding it if an update (or a
    /// `rs_mut` borrow) invalidated it since the last query.
    pub fn ensure_frozen(&mut self) -> Arc<FrozenRsTree<3>> {
        if let Some(frozen) = &self.frozen {
            return Arc::clone(frozen);
        }
        let frozen = Arc::new(self.rs.freeze());
        self.frozen = Some(Arc::clone(&frozen));
        frozen
    }

    /// The frozen snapshot if it is current (no rebuild).
    pub fn frozen(&self) -> Option<&Arc<FrozenRsTree<3>>> {
        self.frozen.as_ref()
    }

    /// The LS forest, if enabled.
    pub fn ls(&self) -> Option<&LsTree<3>> {
        self.ls.as_ref()
    }

    /// The raw item array (the SampleFirst scan file).
    pub fn items(&self) -> &[Item<3>] {
        &self.items
    }

    /// The document collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// Installs a fault-injection hook on this data set's storage read
    /// path (chaos/test runs). Queries keep running; failed block reads
    /// surface as `io_faults` in their outcomes.
    pub fn set_fault_hook(&mut self, hook: std::sync::Arc<dyn storm_faultkit::FaultHook>) {
        self.collection.set_fault_hook(hook);
    }

    /// Removes the storage fault hook, restoring clean reads.
    pub fn clear_fault_hook(&mut self) {
        self.collection.clear_fault_hook();
    }

    /// Looks up a numeric attribute of a sampled record (one block read).
    pub fn number(&self, id: u64, field: &str) -> Option<f64> {
        self.collection.get(DocId(id))?.number(field)
    }

    /// Looks up a text attribute of a sampled record (one block read).
    pub fn text(&self, id: u64, field: &str) -> Option<String> {
        Some(self.collection.get(DocId(id))?.text(field)?.to_owned())
    }

    /// Inserts one record through the update manager: storage, scan file,
    /// and every index stay in sync (paper §4.2 "updates").
    pub fn insert(&mut self, record: StRecord, rng: &mut dyn Rng) -> DocId {
        let id = self.collection.insert(record.body);
        let item = Item::new(record.point.to_point3(), id.0);
        self.item_pos.insert(id.0, self.items.len());
        self.items.push(item);
        self.rs.insert(item, rng);
        self.frozen = None;
        if let Some(ls) = &mut self.ls {
            ls.insert(item);
        }
        self.bounds2 = Some(match self.bounds2 {
            None => Rect2::from_point(record.point.xy),
            Some(b) => b.enlarged_to_point(&record.point.xy),
        });
        id
    }

    /// Removes one record everywhere. Returns `false` for unknown ids.
    pub fn remove(&mut self, id: DocId, rng: &mut dyn Rng) -> bool {
        let Some(pos) = self.item_pos.remove(&id.0) else {
            return false;
        };
        let item = self.items.swap_remove(pos);
        if let Some(moved) = self.items.get(pos) {
            self.item_pos.insert(moved.id, pos);
        }
        self.collection.remove(id);
        let removed_rs = self.rs.remove(&item.point, item.id, rng);
        self.frozen = None;
        debug_assert!(removed_rs, "index out of sync with scan file");
        if let Some(ls) = &mut self.ls {
            let removed_ls = ls.remove(&item.point, item.id);
            debug_assert!(removed_ls);
        }
        true
    }

    /// The stored spatio-temporal point of a record.
    pub fn point_of(&self, id: DocId) -> Option<StPoint> {
        let pos = *self.item_pos.get(&id.0)?;
        let p = self.items[pos].point;
        Some(StPoint::new(p.get(0), p.get(1), p.get(2) as i64))
    }

    /// Exact `|P ∩ Q|` for a 3-D query box, from index counts.
    pub fn exact_count(&self, rect3: &storm_geo::Rect3) -> usize {
        self.rs.exact_count(rect3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use storm_store::Value;

    fn record(x: f64, y: f64, t: i64, v: f64) -> StRecord {
        StRecord {
            point: StPoint::new(x, y, t),
            body: Value::object([
                ("v".into(), Value::Float(v)),
                ("text".into(), Value::from("hello world")),
                ("user".into(), Value::from("u1")),
            ]),
        }
    }

    fn dataset(n: usize) -> Dataset {
        let records = (0..n)
            .map(|i| record((i % 10) as f64, (i / 10) as f64, i as i64, i as f64))
            .collect();
        Dataset::build(
            "test",
            records,
            DatasetConfig {
                fanout: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn build_populates_all_layers() {
        let ds = dataset(100);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.rs().len(), 100);
        assert_eq!(ds.ls().unwrap().len(), 100);
        assert_eq!(ds.items().len(), 100);
        assert_eq!(ds.collection().len(), 100);
        let stats = ds.stats();
        assert_eq!(stats.n, 100);
        assert_eq!(stats.block, 8);
    }

    #[test]
    fn attribute_lookup() {
        let ds = dataset(10);
        let id = ds.items()[3].id;
        assert_eq!(ds.number(id, "v"), Some(3.0));
        assert_eq!(ds.text(id, "user").as_deref(), Some("u1"));
        assert!(ds.number(id, "missing").is_none());
        assert!(ds.number(9999, "v").is_none());
    }

    #[test]
    fn insert_and_remove_keep_layers_in_sync() {
        let mut ds = dataset(50);
        let mut rng = StdRng::seed_from_u64(1);
        let id = ds.insert(record(100.0, 100.0, 999, 42.0), &mut rng);
        assert_eq!(ds.len(), 51);
        assert_eq!(ds.rs().len(), 51);
        assert_eq!(ds.ls().unwrap().len(), 51);
        assert!(ds.bounds2().contains_point(&Point2::xy(100.0, 100.0)));
        assert!(ds.remove(id, &mut rng));
        assert!(!ds.remove(id, &mut rng));
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.rs().len(), 50);
        assert_eq!(ds.ls().unwrap().len(), 50);
    }

    #[test]
    fn point_of_round_trips() {
        let ds = dataset(10);
        let id = DocId(ds.items()[7].id);
        let p = ds.point_of(id).unwrap();
        assert_eq!(p.t, 7);
        assert_eq!(p.xy, Point2::xy(7.0, 0.0));
    }

    #[test]
    fn exact_count_matches_scan() {
        let ds = dataset(200);
        let q = storm_geo::StQuery::new(
            Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(4.0, 4.0)),
            storm_geo::TimeRange::all(),
        );
        let rect3 = q.to_rect3().unwrap();
        let expected = ds
            .items()
            .iter()
            .filter(|it| rect3.contains_point(&it.point))
            .count();
        assert_eq!(ds.exact_count(&rect3), expected);
    }
}
