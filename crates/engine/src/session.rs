//! Online query sessions: progressive results and termination modes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use storm_core::SamplerKind;
use storm_estimators::text::HeavyHitter;
use storm_estimators::Estimate;
use storm_faultkit::DegradedInfo;
use storm_geo::{Point2, StPoint};

/// A cooperative cancellation flag shared with a running query — the
/// mechanism behind "the user can immediately change the query condition
/// to stop the first query and start the second query" (paper §1).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The (progressive or final) result of an analytical task.
#[derive(Debug, Clone)]
pub enum TaskResult {
    /// An aggregate estimate with its confidence interval.
    Aggregate {
        /// The current estimate.
        estimate: Estimate,
        /// Confidence level used for reporting.
        confidence: f64,
    },
    /// Per-group aggregate estimates (the `BY` clause).
    Groups {
        /// `(group key, estimate)` pairs, largest groups first.
        groups: Vec<(String, Estimate)>,
        /// Confidence level used for reporting.
        confidence: f64,
    },
    /// An exact result-cardinality count.
    Count {
        /// `|P ∩ Q|`.
        q: usize,
    },
    /// A density map snapshot.
    Density {
        /// Grid resolution.
        grid: (usize, usize),
        /// Row-major cell densities.
        map: Vec<f64>,
        /// Mean per-cell CI half-width relative to the peak density —
        /// the map-wide quality measure.
        mean_ci: f64,
    },
    /// Cluster centers.
    Cluster {
        /// The current centers.
        centers: Vec<Point2>,
        /// Running mean squared distance to the nearest center.
        inertia: f64,
    },
    /// A reconstructed trajectory.
    Trajectory {
        /// Time-ordered waypoints.
        waypoints: Vec<StPoint>,
    },
    /// Top terms from sampled short text.
    Terms {
        /// Heavy hitters, most frequent first.
        top: Vec<HeavyHitter>,
    },
}

/// A progress snapshot passed to the caller's callback while the query
/// runs — what STORM's UI renders as the estimate ticks toward the truth.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Samples consumed so far.
    pub samples: u64,
    /// Wall-clock time since the query started.
    pub elapsed: Duration,
    /// The current result snapshot.
    pub result: TaskResult,
    /// Degraded-execution report: `Some` once the stream has written off
    /// shards (dead shards + reasons + lost mass). `None` while the query
    /// is whole; the estimator interval already includes the widening.
    pub degraded: Option<DegradedInfo>,
}

/// Why the online loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The sampler exhausted `P ∩ Q` — the result is now exact.
    Exhausted,
    /// The requested `ERROR` target was met.
    QualityReached,
    /// The `WITHIN` time budget elapsed (best-effort mode).
    TimeBudget,
    /// The `SAMPLES` budget was consumed.
    SampleBudget,
    /// The user cancelled (interactive mode).
    Cancelled,
}

/// The final outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The final result.
    pub result: TaskResult,
    /// Total samples consumed.
    pub samples: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Which sampling method ran (after optimization).
    pub sampler: SamplerKind,
    /// Simulated index block reads charged to this query.
    pub io_reads: u64,
    /// Exact result size `q` when known.
    pub q: Option<usize>,
    /// Storage block reads that failed and were retried or skipped
    /// (0 outside chaos runs and storage incidents).
    pub io_faults: u64,
    /// Degraded-execution report: `Some` when the query finished without
    /// some of its shards (dead shards + reasons + lost mass); the
    /// reported interval already includes the missing-mass widening.
    pub degraded: Option<DegradedInfo>,
    /// Why the query stopped.
    pub reason: StopReason,
}

/// One evaluation of the online loop's stop rule.
///
/// Both the single-query executor (`exec::run_plan`) and the multi-session
/// scheduler (`storm-server`) check the same conditions between sample
/// blocks; this struct pins the canonical priority order in one place:
/// cancellation, then the sample budget, then the time budget, then the
/// quality target. Exhaustion is not here — only the sampler itself knows
/// when the stream dried up, so callers break with
/// [`StopReason::Exhausted`] when a batch comes back empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct StopCheck {
    /// The session's cancellation flag at check time.
    pub cancelled: bool,
    /// Samples consumed so far.
    pub samples: u64,
    /// The `SAMPLES` budget, if one was requested.
    pub sample_budget: Option<u64>,
    /// Wall-clock time since the query started.
    pub elapsed: Duration,
    /// The `WITHIN` budget, if one was requested.
    pub time_budget: Option<Duration>,
    /// Current relative CI half-width (callers may skip computing it when
    /// no target is set).
    pub rel_error: Option<f64>,
    /// The `ERROR` target, if one was requested.
    pub target_error: Option<f64>,
}

impl StopCheck {
    /// Applies the stop rule: `Some(reason)` ends the loop now, `None`
    /// means keep sampling. The quality test requires more than one sample
    /// so a lucky first draw (variance still undefined) cannot satisfy an
    /// `ERROR` clause.
    pub fn decide(&self) -> Option<StopReason> {
        if self.cancelled {
            return Some(StopReason::Cancelled);
        }
        if self.sample_budget.is_some_and(|b| self.samples >= b) {
            return Some(StopReason::SampleBudget);
        }
        if self.time_budget.is_some_and(|b| self.elapsed >= b) {
            return Some(StopReason::TimeBudget);
        }
        if let (Some(target), Some(err)) = (self.target_error, self.rel_error) {
            if self.samples > 1 && err <= target {
                return Some(StopReason::QualityReached);
            }
        }
        None
    }
}

impl QueryOutcome {
    /// The aggregate estimate, if this was an aggregate query.
    pub fn estimate(&self) -> Option<Estimate> {
        match &self.result {
            TaskResult::Aggregate { estimate, .. } => Some(*estimate),
            _ => None,
        }
    }

    /// True when the query ran degraded (shards written off or block
    /// reads failed).
    pub fn is_degraded(&self) -> bool {
        self.io_faults > 0
            || self
                .degraded
                .as_ref()
                .is_some_and(DegradedInfo::is_degraded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_check_priority_order() {
        // Cancellation beats every budget; budgets beat quality.
        let all = StopCheck {
            cancelled: true,
            samples: 100,
            sample_budget: Some(50),
            elapsed: Duration::from_secs(10),
            time_budget: Some(Duration::from_secs(1)),
            rel_error: Some(0.0),
            target_error: Some(0.1),
        };
        assert_eq!(all.decide(), Some(StopReason::Cancelled));
        let budgets = StopCheck {
            cancelled: false,
            ..all
        };
        assert_eq!(budgets.decide(), Some(StopReason::SampleBudget));
        let timed = StopCheck {
            sample_budget: None,
            ..budgets
        };
        assert_eq!(timed.decide(), Some(StopReason::TimeBudget));
        let quality = StopCheck {
            time_budget: None,
            ..timed
        };
        assert_eq!(quality.decide(), Some(StopReason::QualityReached));
        assert_eq!(StopCheck::default().decide(), None);
    }

    #[test]
    fn stop_check_quality_needs_two_samples() {
        let first_draw = StopCheck {
            samples: 1,
            rel_error: Some(0.0),
            target_error: Some(0.1),
            ..StopCheck::default()
        };
        assert_eq!(first_draw.decide(), None);
    }

    #[test]
    fn cancel_token_flags() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn outcome_estimate_accessor() {
        let outcome = QueryOutcome {
            result: TaskResult::Count { q: 5 },
            samples: 0,
            elapsed: Duration::ZERO,
            sampler: SamplerKind::RsTree,
            io_reads: 0,
            q: Some(5),
            io_faults: 0,
            degraded: None,
            reason: StopReason::Exhausted,
        };
        assert!(outcome.estimate().is_none());
        assert!(!outcome.is_degraded());
    }

    #[test]
    fn degraded_outcome_is_flagged() {
        use storm_faultkit::FailReason;
        let mut d = DegradedInfo::new(100);
        d.record(1, FailReason::Timeout, 25);
        let outcome = QueryOutcome {
            result: TaskResult::Count { q: 75 },
            samples: 75,
            elapsed: Duration::ZERO,
            sampler: SamplerKind::RsTree,
            io_reads: 0,
            q: Some(75),
            io_faults: 0,
            degraded: Some(d),
            reason: StopReason::Exhausted,
        };
        assert!(outcome.is_degraded());
        let faulty = QueryOutcome {
            io_faults: 3,
            degraded: None,
            ..outcome
        };
        assert!(faulty.is_degraded());
    }
}
