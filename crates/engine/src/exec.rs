//! The query and analytics evaluator: binds a plan to a data set and runs
//! the online sampling loop.

use std::time::{Duration, Instant};

use rand::Rng;
use storm_core::{
    FrozenSampler, LsSampler, QueryFirst, RandomPath, RsSampler, SampleFirst, SampleMode,
    SamplerKind, SpatialSampler,
};
use storm_estimators::cluster::OnlineKMeans;
use storm_estimators::groupby::GroupedMeans;
use storm_estimators::kde::{KdeEstimator, Kernel};
use storm_estimators::quantile::QuantileEstimator;
use storm_estimators::text::SpaceSaving;
use storm_estimators::trajectory::TrajectoryBuilder;
use storm_estimators::OnlineStat;
use storm_faultkit::DegradedInfo;
use storm_geo::{Rect3, StPoint};
use storm_query::{AggFunc, Plan, Task};
use storm_rtree::Item;
use storm_store::{Collection, DocId, Document};

use crate::dataset::{Dataset, DatasetConfig};
use crate::session::{CancelToken, Progress, QueryOutcome, StopCheck, StopReason, TaskResult};
use crate::EngineError;

/// How often (in samples) the loop re-evaluates budgets, quality, and
/// cancellation, and emits progress.
const CHECK_EVERY: u64 = 16;
const PROGRESS_EVERY: u64 = 64;

/// Bounded retries for a transiently failing block read before the
/// sample's record is given up on (corrupt blocks are never retried:
/// corruption is a property of the block, not the attempt).
const READ_RETRIES: u32 = 3;

/// Fault-aware document fetch: the degraded-ingest read path. Transient
/// failures retry up to [`READ_RETRIES`] times; corrupt blocks (and
/// exhausted retries) drop this sample's record — a failed read degrades
/// the estimate, it never kills the query. Every failed attempt is
/// tallied into `io_faults`.
fn fetch<'c>(collection: &'c Collection, id: DocId, io_faults: &mut u64) -> Option<&'c Document> {
    let mut attempts = 0u32;
    loop {
        match collection.try_get(id) {
            Ok(doc) => return doc,
            Err(e) => {
                *io_faults += 1;
                attempts += 1;
                if !e.is_transient() || attempts > READ_RETRIES {
                    return None;
                }
            }
        }
    }
}

/// One sampler of any method, unified for the executor. The RS sampler
/// carries its batch scratch inline, so it's boxed to keep the enum small.
enum AnySampler<'a> {
    Qf(QueryFirst<3>),
    Sf(SampleFirst<'a, 3>),
    Rp(RandomPath<'a, 3>),
    Ls(LsSampler<'a, 3>),
    Rs(Box<RsSampler<'a, 3>>),
    /// Frozen RS kernel; owns an `Arc` of the snapshot, no borrow of the
    /// data set at all.
    Frz(FrozenSampler<3>),
}

impl SpatialSampler<3> for AnySampler<'_> {
    fn next_sample(&mut self, rng: &mut dyn Rng) -> Option<Item<3>> {
        match self {
            AnySampler::Qf(s) => s.next_sample(rng),
            AnySampler::Sf(s) => s.next_sample(rng),
            AnySampler::Rp(s) => s.next_sample(rng),
            AnySampler::Ls(s) => s.next_sample(rng),
            AnySampler::Rs(s) => s.next_sample(rng),
            AnySampler::Frz(s) => s.next_sample(rng),
        }
    }

    fn next_batch(&mut self, rng: &mut dyn Rng, buf: &mut Vec<Item<3>>, k: usize) -> usize {
        // Forward to each method's native batched kernel (the default
        // trait impl would fall back to one-at-a-time draws).
        match self {
            AnySampler::Qf(s) => s.next_batch(rng, buf, k),
            AnySampler::Sf(s) => s.next_batch(rng, buf, k),
            AnySampler::Rp(s) => s.next_batch(rng, buf, k),
            AnySampler::Ls(s) => s.next_batch(rng, buf, k),
            AnySampler::Rs(s) => s.next_batch(rng, buf, k),
            AnySampler::Frz(s) => s.next_batch(rng, buf, k),
        }
    }

    fn kind(&self) -> SamplerKind {
        match self {
            AnySampler::Qf(_) => SamplerKind::QueryFirst,
            AnySampler::Sf(_) => SamplerKind::SampleFirst,
            AnySampler::Rp(_) => SamplerKind::RandomPath,
            AnySampler::Ls(_) => SamplerKind::LsTree,
            AnySampler::Rs(_) => SamplerKind::RsTree,
            AnySampler::Frz(_) => SamplerKind::RsTree,
        }
    }
}

/// Per-task estimator state.
enum TaskState {
    Aggregate {
        agg: AggFunc,
        field: String,
        stat: OnlineStat,
        q: usize,
        misses: u64,
    },
    Quantile {
        field: String,
        est: QuantileEstimator,
        misses: u64,
    },
    Grouped {
        agg: AggFunc,
        field: String,
        by: String,
        means: GroupedMeans<String>,
        q: usize,
    },
    Density {
        kde: KdeEstimator,
    },
    Cluster {
        km: OnlineKMeans,
    },
    Trajectory {
        user: String,
        field: String,
        builder: TrajectoryBuilder,
    },
    Terms {
        ss: SpaceSaving,
        field: String,
        k: usize,
    },
}

impl TaskState {
    fn new(plan: &Plan, cfg: &DatasetConfig, q: usize) -> Result<Self, EngineError> {
        Ok(match &plan.query.task {
            Task::Aggregate {
                agg: AggFunc::Quantile(p),
                field,
                ..
            } => TaskState::Quantile {
                field: field.clone(),
                est: QuantileEstimator::new(*p),
                misses: 0,
            },
            Task::Aggregate {
                agg,
                field,
                by: Some(by),
            } => TaskState::Grouped {
                agg: *agg,
                field: field.clone(),
                by: by.clone(),
                means: GroupedMeans::new(),
                q,
            },
            Task::Aggregate { agg, field, .. } => {
                let stat = match plan.query.mode {
                    SampleMode::WithoutReplacement => OnlineStat::without_replacement(q),
                    SampleMode::WithReplacement => OnlineStat::new(),
                };
                TaskState::Aggregate {
                    agg: *agg,
                    field: field.clone(),
                    stat,
                    q,
                    misses: 0,
                }
            }
            Task::Density { grid } => {
                let rect = plan.st_query.rect;
                let bandwidth = (rect.extent(0).max(rect.extent(1)) * 0.06).max(f64::MIN_POSITIVE);
                let kde =
                    KdeEstimator::new(rect, grid.0, grid.1, Kernel::Epanechnikov { bandwidth })
                        .with_population(q);
                TaskState::Density { kde }
            }
            Task::Cluster { k } => TaskState::Cluster {
                km: OnlineKMeans::new(*k),
            },
            Task::Trajectory { user } => {
                let field = cfg
                    .user_field
                    .clone()
                    .ok_or(EngineError::IndexUnavailable("user-field"))?;
                TaskState::Trajectory {
                    user: user.clone(),
                    field,
                    builder: TrajectoryBuilder::new(),
                }
            }
            Task::Terms { k } => {
                let field = cfg
                    .text_field
                    .clone()
                    .ok_or(EngineError::IndexUnavailable("text-field"))?;
                TaskState::Terms {
                    ss: SpaceSaving::new((*k * 30).max(256)),
                    field,
                    k: *k,
                }
            }
        })
    }

    /// Folds a degraded-stream missing-mass fraction into the estimator
    /// so reported intervals stay honest about written-off shards. Only
    /// the scalar-aggregate estimator supports widening today; other task
    /// states surface degradation through the outcome report alone.
    fn apply_missing_mass(&mut self, phi: f64) {
        if let TaskState::Aggregate { stat, .. } = self {
            stat.set_missing_mass(phi);
        }
    }

    /// Consumes one sample (reading the record body from storage — one
    /// block read, exactly like the deployed system).
    fn ingest(
        &mut self,
        collection: &Collection,
        item: Item<3>,
        io_faults: &mut u64,
    ) -> Result<(), EngineError> {
        match self {
            TaskState::Aggregate {
                field,
                stat,
                misses,
                ..
            } => {
                let value =
                    fetch(collection, DocId(item.id), io_faults).and_then(|doc| doc.number(field));
                match value {
                    Some(v) => stat.push(v),
                    None => {
                        *misses += 1;
                        // All misses so far? The field is probably wrong.
                        if *misses >= 64 && stat.n() == 0 {
                            return Err(EngineError::BadAttribute(field.clone()));
                        }
                    }
                }
            }
            TaskState::Quantile { field, est, misses } => {
                let value =
                    fetch(collection, DocId(item.id), io_faults).and_then(|doc| doc.number(field));
                match value {
                    Some(v) => est.push(v),
                    None => {
                        *misses += 1;
                        if *misses >= 64 && est.n() == 0 {
                            return Err(EngineError::BadAttribute(field.clone()));
                        }
                    }
                }
            }
            TaskState::Grouped {
                field, by, means, ..
            } => {
                if let Some(doc) = fetch(collection, DocId(item.id), io_faults) {
                    if let Some(v) = doc.number(field) {
                        // Group keys stringify so numeric and text grouping
                        // columns both work.
                        let key = doc
                            .text(by)
                            .map(str::to_owned)
                            .or_else(|| doc.number(by).map(|n| n.to_string()))
                            .unwrap_or_else(|| "<null>".to_owned());
                        means.push(key, v);
                    }
                }
            }
            TaskState::Density { kde } => {
                kde.push(&storm_geo::Point2::xy(item.point.get(0), item.point.get(1)));
            }
            TaskState::Cluster { km } => {
                km.push(&storm_geo::Point2::xy(item.point.get(0), item.point.get(1)));
            }
            TaskState::Trajectory {
                user,
                field,
                builder,
            } => {
                let matches = fetch(collection, DocId(item.id), io_faults)
                    .and_then(|doc| doc.text(field))
                    .is_some_and(|u| u == user);
                if matches {
                    builder.push(StPoint::new(
                        item.point.get(0),
                        item.point.get(1),
                        item.point.get(2) as i64,
                    ));
                }
            }
            TaskState::Terms { ss, field, .. } => {
                if let Some(text) =
                    fetch(collection, DocId(item.id), io_faults).and_then(|doc| doc.text(field))
                {
                    ss.push_text(text);
                }
            }
        }
        Ok(())
    }

    fn snapshot(&self, confidence: f64) -> TaskResult {
        match self {
            TaskState::Aggregate { agg, stat, q, .. } => {
                let estimate = match agg {
                    AggFunc::Avg => stat.mean_estimate(),
                    AggFunc::Sum => stat.sum_estimate(*q),
                    AggFunc::Count | AggFunc::Quantile(_) => {
                        unreachable!("handled before/aside the mean path")
                    }
                };
                TaskResult::Aggregate {
                    estimate,
                    confidence,
                }
            }
            TaskState::Quantile { est, .. } => TaskResult::Aggregate {
                // Cheap clone: the estimator needs &mut to sort lazily.
                estimate: est.clone().estimate(confidence),
                confidence,
            },
            TaskState::Grouped { agg, means, q, .. } => {
                let total = means.n().max(1);
                let groups = means
                    .estimates()
                    .into_iter()
                    .map(|(key, est)| match agg {
                        // Per-group SUM scales by the group's share of q.
                        AggFunc::Sum => {
                            let share = est.n as f64 / total as f64;
                            let scale = *q as f64 * share;
                            (
                                key,
                                storm_estimators::Estimate {
                                    value: est.value * scale,
                                    std_err: est.std_err * scale,
                                    n: est.n,
                                },
                            )
                        }
                        _ => (key, est),
                    })
                    .collect();
                TaskResult::Groups { groups, confidence }
            }
            TaskState::Density { kde } => {
                let map = kde.density_map();
                let peak = map
                    .iter()
                    .cloned()
                    .fold(0.0, f64::max)
                    .max(f64::MIN_POSITIVE);
                let mut total_ci = 0.0;
                for iy in 0..kde.ny() {
                    for ix in 0..kde.nx() {
                        total_ci += kde.cell_estimate(ix, iy).half_width(confidence);
                    }
                }
                let cells = (kde.nx() * kde.ny()) as f64;
                TaskResult::Density {
                    grid: (kde.nx(), kde.ny()),
                    map,
                    mean_ci: total_ci / cells / peak,
                }
            }
            TaskState::Cluster { km } => TaskResult::Cluster {
                centers: km.centers().to_vec(),
                inertia: km.mean_inertia(),
            },
            TaskState::Trajectory { builder, .. } => TaskResult::Trajectory {
                waypoints: builder.waypoints().to_vec(),
            },
            TaskState::Terms { ss, k, .. } => TaskResult::Terms { top: ss.top(*k) },
        }
    }

    /// Current relative error, for the `ERROR` stopping rule (only defined
    /// for aggregates and density maps).
    fn rel_error(&self, confidence: f64) -> Option<f64> {
        match self {
            TaskState::Aggregate { agg, stat, q, .. } => {
                let estimate = match agg {
                    AggFunc::Avg => stat.mean_estimate(),
                    AggFunc::Sum => stat.sum_estimate(*q),
                    AggFunc::Count => return Some(0.0),
                    AggFunc::Quantile(_) => unreachable!("separate state"),
                };
                Some(estimate.relative_error(confidence))
            }
            TaskState::Quantile { est, .. } => {
                Some(est.clone().estimate(confidence).relative_error(confidence))
            }
            TaskState::Grouped { means, .. } => {
                // Converged when every *substantial* group (≥2% of the
                // samples) meets the target; tiny groups would otherwise
                // hold the query open indefinitely.
                let total = means.n().max(1);
                let worst = means
                    .estimates()
                    .into_iter()
                    .filter(|(_, est)| est.n * 50 >= total)
                    .map(|(_, est)| est.relative_error(confidence))
                    .fold(0.0f64, f64::max);
                Some(worst)
            }
            TaskState::Density { kde } => {
                if kde.n() < 2 {
                    return Some(f64::INFINITY);
                }
                if let TaskResult::Density { mean_ci, .. } = self.snapshot(confidence) {
                    Some(mean_ci)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// Runs a planned query on a data set.
pub(crate) fn run_plan(
    ds: &mut Dataset,
    plan: &Plan,
    rng: &mut dyn Rng,
    cancel: &CancelToken,
    on_progress: &mut dyn FnMut(&Progress),
) -> Result<QueryOutcome, EngineError> {
    let rect3: Rect3 = plan.st_query.to_rect3().ok_or(EngineError::Internal(
        "planned query has an empty time range",
    ))?;
    let start = Instant::now();
    let confidence = plan.query.termination.confidence_level();
    let q = plan.q_est;

    // Index + storage I/O baselines (per-query accounting on shared
    // counters).
    let index_io = match plan.sampler {
        SamplerKind::LsTree => ds
            .ls
            .as_ref()
            .ok_or(EngineError::IndexUnavailable("LS-tree"))?
            .io_handle(),
        _ => ds.rs.tree().io_handle(),
    };
    let io_before = index_io.reads() + ds.collection.stats().reads();

    // COUNT is exact from aggregate counts — no sampling loop at all.
    if matches!(
        plan.query.task,
        Task::Aggregate {
            agg: AggFunc::Count,
            ..
        }
    ) {
        let outcome = QueryOutcome {
            result: TaskResult::Count { q },
            samples: 0,
            elapsed: start.elapsed(),
            sampler: plan.sampler,
            io_reads: index_io.reads() + ds.collection.stats().reads() - io_before,
            q: Some(q),
            io_faults: 0,
            degraded: None,
            reason: StopReason::Exhausted,
        };
        return Ok(outcome);
    }

    let mut state = TaskState::new(plan, &ds.cfg, q)?;

    // RS-tree plans run the frozen kernel; (re)build the snapshot before
    // splitting the borrows below.
    let frozen = matches!(plan.sampler, SamplerKind::RsTree).then(|| ds.ensure_frozen());

    // Build the sampler over disjoint field borrows so the estimator can
    // still read the collection while RS holds its mutable borrow.
    let Dataset {
        ref mut rs,
        ref ls,
        ref items,
        ref collection,
        ..
    } = *ds;
    let mut sampler = match plan.sampler {
        SamplerKind::QueryFirst => {
            AnySampler::Qf(QueryFirst::new(rs.tree(), &rect3, plan.query.mode))
        }
        SamplerKind::SampleFirst => AnySampler::Sf(
            SampleFirst::new(items, rect3, plan.query.mode).with_io(rs.tree().io_handle()),
        ),
        SamplerKind::RandomPath => {
            AnySampler::Rp(RandomPath::new(rs.tree(), rect3, plan.query.mode))
        }
        SamplerKind::LsTree => AnySampler::Ls(
            ls.as_ref()
                .ok_or(EngineError::IndexUnavailable("LS-tree"))?
                .sampler(rect3),
        ),
        SamplerKind::RsTree => match &frozen {
            Some(f) => AnySampler::Frz(f.sampler(&rect3, plan.query.mode)),
            // Unreachable in practice (`frozen` is built for RsTree
            // plans above); the boxed stream remains as the fallback.
            None => AnySampler::Rs(Box::new(rs.sampler(rect3, plan.query.mode))),
        },
    };

    let term = plan.query.termination;
    let mut samples: u64 = 0;
    let mut io_faults: u64 = 0;
    // The ingest loop pulls one block per iteration (the batched sampling
    // kernel), re-checking budgets/quality/cancellation between blocks —
    // the same cadence the one-at-a-time loop checked at, with the
    // per-draw dispatch amortised away. The block buffer is reused.
    let mut block: Vec<Item<3>> = Vec::with_capacity(CHECK_EVERY as usize);
    let mut next_progress = PROGRESS_EVERY;
    let reason = loop {
        let check = StopCheck {
            cancelled: cancel.is_cancelled(),
            samples,
            sample_budget: term.sample_budget.map(|b| b as u64),
            elapsed: start.elapsed(),
            time_budget: term.time_budget_ms.map(Duration::from_millis),
            // Only pay the snapshot when an ERROR clause can use it.
            rel_error: if term.target_error.is_some() {
                state.rel_error(confidence)
            } else {
                None
            },
            target_error: term.target_error,
        };
        if let Some(reason) = check.decide() {
            break reason;
        }
        let mut want = CHECK_EVERY;
        if let Some(budget) = term.sample_budget {
            // Clamp the block so the budget is hit exactly.
            want = want.min(budget as u64 - samples);
        }
        block.clear();
        if sampler.next_batch(rng, &mut block, want as usize) == 0 {
            break StopReason::Exhausted;
        }
        for &item in &block {
            samples += 1;
            state.ingest(collection, item, &mut io_faults)?;
        }
        if samples >= next_progress {
            let degraded = sampler.degraded().filter(DegradedInfo::is_degraded);
            if let Some(d) = &degraded {
                state.apply_missing_mass(d.missing_fraction());
            }
            on_progress(&Progress {
                samples,
                elapsed: start.elapsed(),
                result: state.snapshot(confidence),
                degraded,
            });
            next_progress = (samples / PROGRESS_EVERY + 1) * PROGRESS_EVERY;
        }
    };
    let degraded = sampler.degraded().filter(DegradedInfo::is_degraded);
    if let Some(d) = &degraded {
        state.apply_missing_mass(d.missing_fraction());
    }
    drop(sampler);

    Ok(QueryOutcome {
        result: state.snapshot(confidence),
        samples,
        elapsed: start.elapsed(),
        sampler: plan.sampler,
        io_reads: index_io.reads() + ds.collection.stats().reads() - io_before,
        q: Some(q),
        io_faults,
        degraded,
        reason,
    })
}
