//! Data-set persistence: save/load a data set (records + locations) as
//! JSON-lines, so an engine can be restarted without re-importing from the
//! original source.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use storm_connector::StRecord;
use storm_geo::StPoint;
use storm_store::{json, DocId, Value};

use crate::dataset::{Dataset, DatasetConfig};
use crate::{EngineError, StormEngine};

/// Reserved keys carrying the indexed location in the persisted format.
const KEY_X: &str = "_x";
const KEY_Y: &str = "_y";
const KEY_T: &str = "_t";

impl StormEngine {
    /// Writes a data set as JSON-lines: the record body plus `_x`/`_y`/`_t`
    /// location keys per line.
    pub fn save_dataset(&self, name: &str, path: &Path) -> Result<(), EngineError> {
        let ds = self.dataset(name)?;
        let file = std::fs::File::create(path).map_err(|e| io_err(&e))?;
        let mut out = BufWriter::new(file);
        // Deterministic order: by record id.
        let mut items: Vec<_> = ds.items().to_vec();
        items.sort_by_key(|it| it.id);
        for item in items {
            let doc = ds
                .collection()
                .get(DocId(item.id))
                .ok_or(EngineError::Internal(
                    "scan file and collection out of sync",
                ))?;
            let mut map = match &doc.body {
                Value::Object(map) => map.clone(),
                other => {
                    let mut m = std::collections::BTreeMap::new();
                    m.insert("_value".to_owned(), other.clone());
                    m
                }
            };
            map.insert(KEY_X.to_owned(), Value::Float(item.point.get(0)));
            map.insert(KEY_Y.to_owned(), Value::Float(item.point.get(1)));
            map.insert(KEY_T.to_owned(), Value::Int(item.point.get(2) as i64));
            writeln!(out, "{}", json::to_string(&Value::Object(map))).map_err(|e| io_err(&e))?;
        }
        out.flush().map_err(|e| io_err(&e))
    }

    /// Loads a data set saved by [`StormEngine::save_dataset`], rebuilding
    /// storage and every index.
    pub fn load_dataset(
        &mut self,
        name: &str,
        path: &Path,
        cfg: DatasetConfig,
    ) -> Result<usize, EngineError> {
        if self.dataset(name).is_ok() {
            return Err(EngineError::DatasetExists(name.to_owned()));
        }
        let file = std::fs::File::open(path).map_err(|e| io_err(&e))?;
        let reader = BufReader::new(file);
        let mut records = Vec::new();
        for (line_no, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| io_err(&e))?;
            if line.trim().is_empty() {
                continue;
            }
            let value = json::parse(&line).map_err(|e| {
                EngineError::Connector(storm_connector::ConnectorError::Parse {
                    record: line_no + 1,
                    message: e.to_string(),
                })
            })?;
            let Value::Object(mut map) = value else {
                return Err(EngineError::Connector(
                    storm_connector::ConnectorError::Parse {
                        record: line_no + 1,
                        message: "expected a JSON object per line".into(),
                    },
                ));
            };
            let coord = |v: Option<Value>, key: &str| -> Result<f64, EngineError> {
                v.as_ref().and_then(Value::as_float).ok_or_else(|| {
                    EngineError::Connector(storm_connector::ConnectorError::MissingField {
                        record: line_no + 1,
                        field: key.to_owned(),
                    })
                })
            };
            let x = coord(map.remove(KEY_X), KEY_X)?;
            let y = coord(map.remove(KEY_Y), KEY_Y)?;
            let t = map
                .remove(KEY_T)
                .as_ref()
                .and_then(Value::as_int)
                .unwrap_or(0);
            records.push(StRecord {
                point: StPoint::new(x, y, t),
                body: Value::Object(map),
            });
        }
        let n = records.len();
        let ds = Dataset::build(name, records, cfg);
        self.insert_dataset(name, ds);
        Ok(n)
    }
}

fn io_err(e: &std::io::Error) -> EngineError {
    EngineError::Connector(storm_connector::ConnectorError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TaskResult;

    fn engine_with_data() -> StormEngine {
        let records: Vec<StRecord> = (0..800)
            .map(|i| StRecord {
                point: StPoint::new((i % 40) as f64, (i / 40) as f64, i as i64),
                body: Value::object([
                    ("v".into(), Value::Float((i % 9) as f64)),
                    ("tag".into(), Value::from(format!("t{}", i % 4))),
                ]),
            })
            .collect();
        let mut e = StormEngine::new(31);
        e.create_dataset("src", records, DatasetConfig::default())
            .unwrap();
        e
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("storm-engine-persist-{tag}-{}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_preserves_answers() {
        let mut e = engine_with_data();
        let path = tmp("roundtrip");
        e.save_dataset("src", &path).unwrap();
        let n = e
            .load_dataset("copy", &path, DatasetConfig::default())
            .unwrap();
        assert_eq!(n, 800);
        let a = e
            .execute("ESTIMATE AVG(v) FROM src RANGE 3 3 30 15 TIME 100 700")
            .unwrap();
        let b = e
            .execute("ESTIMATE AVG(v) FROM copy RANGE 3 3 30 15 TIME 100 700")
            .unwrap();
        // Both exhaust → exact up to summation order.
        assert!((a.estimate().unwrap().value - b.estimate().unwrap().value).abs() < 1e-9);
        assert_eq!(a.q, b.q);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loading_over_an_existing_name_fails() {
        let mut e = engine_with_data();
        let path = tmp("dup");
        e.save_dataset("src", &path).unwrap();
        assert!(matches!(
            e.load_dataset("src", &path, DatasetConfig::default()),
            Err(EngineError::DatasetExists(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_lines_are_reported_with_position() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"_x\":1.0,\"_y\":2.0,\"_t\":3}\nnot json\n").unwrap();
        let mut e = StormEngine::new(1);
        match e.load_dataset("bad", &path, DatasetConfig::default()) {
            Err(EngineError::Connector(storm_connector::ConnectorError::Parse {
                record, ..
            })) => assert_eq!(record, 2),
            other => panic!("unexpected: {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_location_keys_fail_cleanly() {
        let path = tmp("noloc");
        std::fs::write(&path, "{\"v\":1}\n").unwrap();
        let mut e = StormEngine::new(1);
        assert!(matches!(
            e.load_dataset("bad", &path, DatasetConfig::default()),
            Err(EngineError::Connector(
                storm_connector::ConnectorError::MissingField { .. }
            ))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn explain_reports_the_optimizers_view() {
        let e = engine_with_data();
        let text = e
            .explain("ESTIMATE AVG(v) FROM src RANGE 0 0 10 10 SAMPLES 50")
            .unwrap();
        assert!(text.contains("dataset: src"));
        assert!(text.contains("chosen"));
        assert!(text.contains("QueryFirst"));
        assert!(text.contains("RS-tree"));
        // Forcing a method is reported.
        let text = e
            .explain("ESTIMATE COUNT FROM src METHOD randompath")
            .unwrap();
        assert!(text.contains("forced"));
        // COUNT queries still explain fine (they short-circuit at run time).
        let _ = e.explain("ESTIMATE COUNT FROM src").unwrap();
    }

    #[test]
    fn loaded_dataset_supports_all_tasks() {
        let mut e = engine_with_data();
        let path = tmp("alltasks");
        e.save_dataset("src", &path).unwrap();
        e.load_dataset("copy", &path, DatasetConfig::default())
            .unwrap();
        let outcome = e.execute("DENSITY FROM copy GRID 8 8 SAMPLES 300").unwrap();
        assert!(matches!(outcome.result, TaskResult::Density { .. }));
        let outcome = e.execute("CLUSTER 2 FROM copy SAMPLES 200").unwrap();
        assert!(matches!(outcome.result, TaskResult::Cluster { .. }));
        std::fs::remove_file(path).ok();
    }
}
