//! Interactive analytics: a background session runner whose running query
//! can be pre-empted by the next one.
//!
//! Paper §1: "user can change his/her query condition without the need of
//! waiting for the current query to complete". The runner owns the engine
//! on a worker thread; submitting a query while another is running cancels
//! the running one, and progress/outcome events stream back on a channel.
//!
//! The executor ingests samples in blocks (the batched sampling kernel),
//! so pre-emption is observed at block/progress boundaries — every few
//! dozen samples, i.e. well under a millisecond of extra latency — rather
//! than between individual draws.

use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::session::{CancelToken, Progress, QueryOutcome};
use crate::StormEngine;

/// Events streamed from the worker.
#[derive(Debug)]
// storm-analyzer: allow(A3): Progress ticks are drained by callers' catch-all arms (only terminal events are matched by name in this file); nothing blocks on a Progress
pub enum Event {
    /// A progress tick from the currently running query.
    Progress {
        /// Which submission this belongs to.
        query_id: u64,
        /// The snapshot.
        progress: Progress,
    },
    /// A query finished (any stop reason, including cancellation).
    Finished {
        /// Which submission this belongs to.
        query_id: u64,
        /// The outcome.
        outcome: QueryOutcome,
    },
    /// A query failed to parse/plan/run.
    Error {
        /// Which submission this belongs to.
        query_id: u64,
        /// The stringified error.
        message: String,
    },
}

enum Command {
    Run { query_id: u64, ql: String },
    Shutdown,
}

/// Handle to an interactive STORM session.
#[derive(Debug)]
pub struct InteractiveSession {
    commands: Sender<Command>,
    events: Receiver<Event>,
    next_id: u64,
    worker: Option<JoinHandle<StormEngine>>,
}

impl InteractiveSession {
    /// Moves `engine` onto a worker thread and opens the session.
    pub fn start(engine: StormEngine) -> Self {
        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (evt_tx, evt_rx) = unbounded::<Event>();
        let worker = std::thread::spawn(move || worker_loop(engine, &cmd_rx, &evt_tx));
        InteractiveSession {
            commands: cmd_tx,
            events: evt_rx,
            next_id: 0,
            worker: Some(worker),
        }
    }

    /// Submits a query. A query already running is cancelled as soon as it
    /// next checks for pre-emption. Returns the submission id that tags
    /// this query's events.
    pub fn submit(&mut self, ql: &str) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        // A failed send means the worker died (panicked); the events
        // channel is closed then, so callers observe termination instead of
        // a second panic here.
        let _ = self.commands.send(Command::Run {
            query_id: id,
            ql: ql.to_owned(),
        });
        id
    }

    /// The event stream.
    pub fn events(&self) -> &Receiver<Event> {
        &self.events
    }

    /// Blocks until the given submission finishes (drops earlier events).
    pub fn wait_for(&self, query_id: u64) -> Option<Event> {
        for event in self.events.iter() {
            match &event {
                Event::Finished { query_id: id, .. } | Event::Error { query_id: id, .. }
                    if *id == query_id =>
                {
                    return Some(event)
                }
                _ => {}
            }
        }
        None
    }

    /// Shuts the worker down and returns the engine.
    pub fn shutdown(mut self) -> StormEngine {
        let _ = self.commands.send(Command::Shutdown);
        // `worker` is Some from construction until exactly one of
        // shutdown()/Drop takes it, and shutdown consumes self.
        // storm-lint: allow(R1): Option is only for Drop; provably Some here
        let worker = self.worker.take().expect("worker taken only once");
        match worker.join() {
            Ok(engine) => engine,
            // Re-raise the worker's own panic rather than minting a new one.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl Drop for InteractiveSession {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.commands.send(Command::Shutdown);
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    mut engine: StormEngine,
    commands: &Receiver<Command>,
    events: &Sender<Event>,
) -> StormEngine {
    let mut pending: Option<Command> = None;
    loop {
        let command = match pending.take() {
            Some(c) => c,
            None => match commands.recv() {
                Ok(c) => c,
                Err(_) => return engine, // session handle dropped
            },
        };
        match command {
            Command::Shutdown => return engine,
            Command::Run { query_id, ql } => {
                let cancel = CancelToken::new();
                let result = {
                    let cancel_inner = cancel.clone();
                    let mut on_progress = |p: &Progress| {
                        // Pre-emption: a newer command cancels this query.
                        match commands.try_recv() {
                            Ok(next) => {
                                pending = Some(next);
                                cancel_inner.cancel();
                            }
                            Err(TryRecvError::Empty) => {}
                            Err(TryRecvError::Disconnected) => cancel_inner.cancel(),
                        }
                        let _ = events.send(Event::Progress {
                            query_id,
                            progress: p.clone(),
                        });
                    };
                    engine.execute_with(&ql, &cancel, &mut on_progress)
                };
                let event = match result {
                    Ok(outcome) => Event::Finished { query_id, outcome },
                    Err(e) => Event::Error {
                        query_id,
                        message: e.to_string(),
                    },
                };
                let _ = events.send(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::session::StopReason;
    use storm_connector::StRecord;
    use storm_geo::StPoint;
    use storm_store::Value;

    fn engine(n: usize) -> StormEngine {
        let mut e = StormEngine::new(1);
        let records = (0..n)
            .map(|i| StRecord {
                point: StPoint::new((i % 100) as f64, (i / 100) as f64, i as i64),
                body: Value::object([("v".into(), Value::Float((i % 5) as f64))]),
            })
            .collect();
        e.create_dataset(
            "d",
            records,
            DatasetConfig {
                fanout: 16,
                ..Default::default()
            },
        )
        .unwrap();
        e
    }

    #[test]
    fn runs_a_query_to_completion() {
        let mut session = InteractiveSession::start(engine(2_000));
        let id = session.submit("ESTIMATE AVG(v) FROM d SAMPLES 500");
        match session.wait_for(id) {
            Some(Event::Finished { outcome, .. }) => {
                assert!(outcome.samples >= 500);
            }
            other => panic!("unexpected: {other:?}"),
        }
        session.shutdown();
    }

    #[test]
    fn a_new_query_preempts_the_running_one() {
        let mut session = InteractiveSession::start(engine(200_000));
        // Unbounded query (runs until exhaustion of 200k points)...
        let first = session.submit("ESTIMATE AVG(v) FROM d");
        // ...pre-empted right away.
        let second = session.submit("ESTIMATE AVG(v) FROM d SAMPLES 100");
        let mut first_reason = None;
        let mut second_done = false;
        for event in session.events().iter() {
            match event {
                Event::Finished { query_id, outcome } if query_id == first => {
                    first_reason = Some(outcome.reason);
                }
                Event::Finished { query_id, .. } if query_id == second => {
                    second_done = true;
                    break;
                }
                Event::Error { message, .. } => panic!("{message}"),
                _ => {}
            }
        }
        assert_eq!(first_reason, Some(StopReason::Cancelled));
        assert!(second_done);
        session.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut session = InteractiveSession::start(engine(100));
        let id = session.submit("ESTIMATE AVG(v) FROM nonexistent");
        match session.wait_for(id) {
            Some(Event::Error { message, .. }) => {
                assert!(message.contains("nonexistent"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Session still usable.
        let id = session.submit("ESTIMATE COUNT FROM d");
        assert!(matches!(session.wait_for(id), Some(Event::Finished { .. })));
        session.shutdown();
    }
}
