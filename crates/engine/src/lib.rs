//! The STORM engine: spatio-temporal online reasoning and management.
//!
//! This crate wires every substrate into the system of paper Figure 2:
//!
//! * [`Dataset`] — records in the storage engine plus the ST-indexing
//!   structures (an RS-tree always; an LS-tree forest optionally) and the
//!   raw scan file the `SampleFirst` baseline probes;
//! * [`StormEngine`] — the facade: data import through the connector,
//!   ad-hoc updates (the update manager), and query execution;
//! * [`session`] — the online query lifecycle: progressive estimates,
//!   the three termination modes (interactive stop, quality target,
//!   best-effort time budget), and cancellation;
//! * [`interactive`] — a background session runner on which a new query
//!   can pre-empt a running one, the paper's "change the query condition
//!   without waiting for the current query to complete";
//! * [`viz`] — the visualizer: ASCII heat maps and PPM images of KDE
//!   density maps and trajectories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod engine;
mod exec;
pub mod interactive;
mod persist;
pub mod session;
pub mod viz;

pub use dataset::{Dataset, DatasetConfig};
pub use engine::{ImportReport, StormEngine};
pub use session::{CancelToken, Progress, QueryOutcome, StopCheck, StopReason, TaskResult};
// Fault-injection / degraded-execution vocabulary, re-exported so engine
// users can configure chaos runs and inspect degradation without a direct
// storm-faultkit dependency.
pub use storm_faultkit::{DegradedInfo, FaultHook, FaultPlan, RetryPolicy};

/// Engine-level errors.
#[derive(Debug)]
pub enum EngineError {
    /// The referenced data set does not exist.
    NoSuchDataset(String),
    /// A data set with this name already exists.
    DatasetExists(String),
    /// STORM-QL failed to parse or plan.
    Ql(storm_query::QlError),
    /// Import failed.
    Connector(storm_connector::ConnectorError),
    /// The query needs an index this data set was built without.
    IndexUnavailable(&'static str),
    /// The queried attribute is absent or non-numeric in sampled records.
    BadAttribute(String),
    /// An internal invariant did not hold — a bug surfaced as an error
    /// instead of a panic, so an interactive session survives it.
    Internal(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoSuchDataset(name) => write!(f, "no such dataset '{name}'"),
            EngineError::DatasetExists(name) => write!(f, "dataset '{name}' already exists"),
            EngineError::Ql(e) => write!(f, "{e}"),
            EngineError::Connector(e) => write!(f, "import failed: {e}"),
            EngineError::IndexUnavailable(which) => {
                write!(f, "this dataset was built without the {which} index")
            }
            EngineError::BadAttribute(field) => {
                write!(f, "attribute '{field}' is missing or non-numeric")
            }
            EngineError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<storm_query::QlError> for EngineError {
    fn from(e: storm_query::QlError) -> Self {
        EngineError::Ql(e)
    }
}

impl From<storm_connector::ConnectorError> for EngineError {
    fn from(e: storm_connector::ConnectorError) -> Self {
        EngineError::Connector(e)
    }
}
