//! The visualizer: terminal and image rendering of online results.
//!
//! STORM's visualizer "implements a number of basic visualization tools to
//! enable visualizing the results from an online estimator, such as
//! visualizing density estimate from KDE" (paper §3.2). The deployed demo
//! renders onto a web map; here density maps render as ASCII heat maps and
//! PPM images, and trajectories as ASCII plots.

use std::io::Write;
use std::path::Path;

use storm_geo::StPoint;

/// Density ramp from cold to hot.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a row-major density map as an ASCII heat map, highest values
/// darkest. Rows are emitted top-to-bottom (larger `y` first), matching
/// map orientation.
pub fn ascii_heatmap(map: &[f64], nx: usize, ny: usize) -> String {
    assert_eq!(map.len(), nx * ny, "map size must be nx*ny");
    let peak = map.iter().cloned().fold(0.0, f64::max);
    let mut out = String::with_capacity((nx + 1) * ny);
    for iy in (0..ny).rev() {
        for ix in 0..nx {
            let v = map[iy * nx + ix];
            let idx = if peak > 0.0 {
                ((v / peak) * (RAMP.len() - 1) as f64).round() as usize
            } else {
                0
            };
            out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

/// Writes a density map as a binary PPM image with a blue→red heat
/// palette (larger `y` at the top).
pub fn write_ppm(map: &[f64], nx: usize, ny: usize, path: &Path) -> std::io::Result<()> {
    assert_eq!(map.len(), nx * ny, "map size must be nx*ny");
    let peak = map.iter().cloned().fold(0.0, f64::max);
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(out, "P6\n{nx} {ny}\n255\n")?;
    for iy in (0..ny).rev() {
        for ix in 0..nx {
            let t = if peak > 0.0 {
                map[iy * nx + ix] / peak
            } else {
                0.0
            };
            let (r, g, b) = heat_color(t);
            out.write_all(&[r, g, b])?;
        }
    }
    out.flush()
}

/// Blue → cyan → yellow → red heat palette.
fn heat_color(t: f64) -> (u8, u8, u8) {
    let t = t.clamp(0.0, 1.0);
    let segment = (t * 3.0).min(2.999);
    let f = segment.fract();
    match segment as u32 {
        0 => (0, (f * 255.0) as u8, 255), // blue → cyan
        1 => ((f * 255.0) as u8, 255, (255.0 * (1.0 - f)) as u8), // cyan → yellow
        _ => (255, (255.0 * (1.0 - f)) as u8, 0), // yellow → red
    }
}

/// Plots a trajectory as ASCII: waypoints as `o`, connected order implied
/// by the time sort; start marked `S`, end marked `E`.
pub fn ascii_trajectory(waypoints: &[StPoint], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "canvas too small");
    let (Some(first), Some(last)) = (waypoints.first(), waypoints.last()) else {
        return String::from("(empty trajectory)\n");
    };
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in waypoints {
        x0 = x0.min(p.xy.x());
        x1 = x1.max(p.xy.x());
        y0 = y0.min(p.xy.y());
        y1 = y1.max(p.xy.y());
    }
    let to_cell = |p: &StPoint| -> (usize, usize) {
        let fx = if x1 > x0 {
            (p.xy.x() - x0) / (x1 - x0)
        } else {
            0.5
        };
        let fy = if y1 > y0 {
            (p.xy.y() - y0) / (y1 - y0)
        } else {
            0.5
        };
        (
            ((fx * (width - 1) as f64).round() as usize).min(width - 1),
            ((fy * (height - 1) as f64).round() as usize).min(height - 1),
        )
    };
    let mut grid = vec![b' '; width * height];
    // Draw simple line segments between consecutive waypoints.
    for pair in waypoints.windows(2) {
        let (ax, ay) = to_cell(&pair[0]);
        let (bx, by) = to_cell(&pair[1]);
        let steps = ax.abs_diff(bx).max(ay.abs_diff(by)).max(1);
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let x = (ax as f64 + t * (bx as f64 - ax as f64)).round() as usize;
            let y = (ay as f64 + t * (by as f64 - ay as f64)).round() as usize;
            grid[y * width + x] = b'.';
        }
    }
    for p in waypoints {
        let (x, y) = to_cell(p);
        grid[y * width + x] = b'o';
    }
    let (sx, sy) = to_cell(first);
    let (ex, ey) = to_cell(last);
    grid[sy * width + sx] = b'S';
    grid[ey * width + ex] = b'E';

    let mut out = String::with_capacity((width + 1) * height);
    for y in (0..height).rev() {
        for x in 0..width {
            out.push(grid[y * width + x] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_marks_the_peak() {
        let mut map = vec![0.0; 16];
        map[5] = 1.0; // (x=1, y=1) in a 4x4 grid
        let art = ascii_heatmap(&map, 4, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        // y=1 renders on the third line from the top (rows reversed).
        assert_eq!(lines[2].as_bytes()[1], b'@');
        assert_eq!(lines[0].trim(), "");
    }

    #[test]
    fn all_zero_map_renders_blank() {
        let art = ascii_heatmap(&[0.0; 9], 3, 3);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    #[should_panic(expected = "nx*ny")]
    fn size_mismatch_panics() {
        ascii_heatmap(&[0.0; 5], 2, 2);
    }

    #[test]
    fn ppm_has_valid_header_and_size() {
        let path = std::env::temp_dir().join(format!("storm-viz-{}.ppm", std::process::id()));
        let map: Vec<f64> = (0..64).map(|i| i as f64).collect();
        write_ppm(&map, 8, 8, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n8 8\n255\n"));
        assert_eq!(bytes.len(), 11 + 8 * 8 * 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn heat_palette_endpoints() {
        assert_eq!(heat_color(0.0), (0, 0, 255));
        let (r, g, b) = heat_color(1.0);
        assert_eq!(r, 255);
        assert!(g < 5);
        assert_eq!(b, 0);
    }

    #[test]
    fn trajectory_plot_marks_start_and_end() {
        let points = vec![
            StPoint::new(0.0, 0.0, 0),
            StPoint::new(5.0, 5.0, 1),
            StPoint::new(10.0, 0.0, 2),
        ];
        let art = ascii_trajectory(&points, 21, 11);
        assert!(art.contains('S'));
        assert!(art.contains('E'));
        assert!(art.contains('o') || art.contains('.'));
    }

    #[test]
    fn empty_trajectory_is_handled() {
        assert!(ascii_trajectory(&[], 10, 10).contains("empty"));
    }
}
