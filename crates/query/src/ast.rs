//! The STORM-QL abstract syntax tree.

use storm_core::{SampleMode, SamplerKind};
use storm_geo::{Rect2, TimeRange};

/// Aggregation functions with unbiased sample estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggFunc {
    /// Population mean of an attribute.
    Avg,
    /// Population sum of an attribute (`q · X̄`).
    Sum,
    /// Result cardinality `q` (exact, from index counts).
    Count,
    /// The population `p`-quantile of an attribute (order-statistic CI).
    Quantile(f64),
}

/// The analytical task a query requests — the paper's built-in feature
/// module entries plus the customized-analytics demos.
#[derive(Debug, Clone, PartialEq)]
pub enum Task {
    /// `ESTIMATE AVG(field)` / `SUM(field)` / `COUNT`, optionally with a
    /// `BY group-field` clause (per-group online estimates, after the
    /// group-by online aggregation of Xu et al. [19]).
    Aggregate {
        /// The aggregation function.
        agg: AggFunc,
        /// The attribute being aggregated (empty for `COUNT`).
        field: String,
        /// Group-by attribute (`None` for a single global aggregate).
        by: Option<String>,
    },
    /// `DENSITY [GRID nx ny]` — online KDE density map (Figure 5).
    Density {
        /// Grid resolution `(nx, ny)`.
        grid: (usize, usize),
    },
    /// `CLUSTER k` — online k-means (spatial clustering on samples).
    Cluster {
        /// Number of clusters.
        k: usize,
    },
    /// `TRAJECTORY 'user'` — online approximate trajectory (Figure 6a).
    Trajectory {
        /// The user/entity whose path to reconstruct.
        user: String,
    },
    /// `TERMS k` — online short-text heavy hitters (Figure 6b).
    Terms {
        /// How many top terms to report.
        k: usize,
    },
}

/// Why and when the online loop should stop — the paper's three modes:
/// run-until-stopped (all `None`), stop-at-quality (`target_error`), and
/// best-effort (`time_budget_ms`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Termination {
    /// Confidence level for intervals (default 0.95).
    pub confidence: Option<f64>,
    /// Stop when the relative CI half-width drops below this.
    pub target_error: Option<f64>,
    /// Best-effort mode: stop after this many milliseconds.
    pub time_budget_ms: Option<u64>,
    /// Stop after this many samples.
    pub sample_budget: Option<usize>,
}

impl Termination {
    /// The effective confidence level.
    pub fn confidence_level(&self) -> f64 {
        self.confidence.unwrap_or(0.95)
    }

    /// True when no stopping rule was given (run until exhausted or
    /// cancelled).
    pub fn is_unbounded(&self) -> bool {
        self.target_error.is_none() && self.time_budget_ms.is_none() && self.sample_budget.is_none()
    }
}

/// A parsed STORM-QL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// What to compute.
    pub task: Task,
    /// Which data set to run on.
    pub dataset: String,
    /// Spatial region (`None` = the data set's full extent).
    pub range: Option<Rect2>,
    /// Temporal extent (`None` = all time).
    pub time: Option<TimeRange>,
    /// Stopping rules.
    pub termination: Termination,
    /// Forced sampling method (`None` = let the optimizer choose).
    pub method: Option<SamplerKind>,
    /// Sampling mode.
    pub mode: SampleMode,
}

impl Query {
    /// The effective time range.
    pub fn time_range(&self) -> TimeRange {
        self.time.unwrap_or_else(TimeRange::all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn termination_defaults() {
        let t = Termination::default();
        assert!(t.is_unbounded());
        assert_eq!(t.confidence_level(), 0.95);
        let t = Termination {
            target_error: Some(0.01),
            ..Default::default()
        };
        assert!(!t.is_unbounded());
    }
}
