//! Tokeniser for STORM-QL.

use crate::QlError;

/// One token of a STORM-QL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (case preserved; keyword matching is
    /// case-insensitive).
    Word(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

impl Token {
    /// The token as a lowercase keyword, if it is a word.
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Word(w) => Some(w.to_lowercase()),
            _ => None,
        }
    }
}

/// Tokenises a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, QlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QlError::Lex {
                        offset: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '-' | '+' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+')
                {
                    // Only allow sign right after an exponent marker.
                    if matches!(bytes[i], b'-' | b'+') && !matches!(bytes[i - 1], b'e' | b'E') {
                        break;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<f64>().map_err(|_| QlError::Lex {
                    offset: start,
                    message: format!("invalid number '{text}'"),
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Word(input[start..i].to_owned()));
            }
            c => {
                return Err(QlError::Lex {
                    offset: i,
                    message: format!("unexpected character '{c}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks = lex("ESTIMATE AVG(temp) FROM mesowest RANGE -112.3 40.1 -111.0 41.2").unwrap();
        assert_eq!(toks[0], Token::Word("ESTIMATE".into()));
        assert_eq!(toks[1], Token::Word("AVG".into()));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[3], Token::Word("temp".into()));
        assert_eq!(toks[4], Token::RParen);
        assert_eq!(toks[7], Token::Word("RANGE".into()));
        assert_eq!(toks[8], Token::Number(-112.3));
    }

    #[test]
    fn lexes_strings_and_dotted_fields() {
        let toks = lex("TRAJECTORY 'user 17' FROM t FIELD geo.lat").unwrap();
        assert_eq!(toks[1], Token::Str("user 17".into()));
        assert_eq!(toks[5], Token::Word("geo.lat".into()));
    }

    #[test]
    fn scientific_notation() {
        let toks = lex("ERROR 1e-2").unwrap();
        assert_eq!(toks[1], Token::Number(0.01));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT %").is_err());
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn keyword_is_case_insensitive() {
        let toks = lex("estimate").unwrap();
        assert_eq!(toks[0].keyword().unwrap(), "estimate");
    }
}
