//! Recursive-descent parser for STORM-QL.

use storm_core::{SampleMode, SamplerKind};
use storm_geo::{Point2, Rect2, TimeRange};

use crate::ast::{AggFunc, Query, Task, Termination};
use crate::lexer::{lex, Token};
use crate::QlError;

/// Parses a STORM-QL query string.
pub fn parse(input: &str) -> Result<Query, QlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: &str) -> QlError {
        let context = self.tokens.get(self.pos).map_or_else(
            || format!("{message} (at end of input)"),
            |t| format!("{message} (at {t:?})"),
        );
        QlError::Parse { message: context }
    }

    fn peek_keyword(&self) -> Option<String> {
        self.tokens.get(self.pos).and_then(Token::keyword)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QlError> {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword '{}'", kw.to_uppercase())))
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, QlError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(*n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(&format!("expected a number for {what}")))
            }
        }
    }

    fn positive_int(&mut self, what: &str) -> Result<usize, QlError> {
        let n = self.number(what)?;
        if n >= 1.0 && n.fract() == 0.0 && n <= usize::MAX as f64 {
            Ok(n as usize)
        } else {
            Err(self.error(&format!("{what} must be a positive integer")))
        }
    }

    fn word(&mut self, what: &str) -> Result<String, QlError> {
        match self.bump() {
            Some(Token::Word(w)) => Ok(w.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(&format!("expected an identifier for {what}")))
            }
        }
    }

    fn word_or_string(&mut self, what: &str) -> Result<String, QlError> {
        match self.bump() {
            Some(Token::Word(w)) => Ok(w.clone()),
            Some(Token::Str(s)) => Ok(s.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(&format!("expected a name for {what}")))
            }
        }
    }

    fn query(&mut self) -> Result<Query, QlError> {
        let task = self.task()?;
        self.expect_keyword("from")?;
        let dataset = self.word("the dataset name")?;
        let mut query = Query {
            task,
            dataset,
            range: None,
            time: None,
            termination: Termination::default(),
            method: None,
            mode: SampleMode::WithoutReplacement,
        };
        while let Some(kw) = self.peek_keyword() {
            self.pos += 1;
            match kw.as_str() {
                "range" => {
                    let x1 = self.number("RANGE x1")?;
                    let y1 = self.number("RANGE y1")?;
                    let x2 = self.number("RANGE x2")?;
                    let y2 = self.number("RANGE y2")?;
                    query.range = Some(Rect2::from_corners(Point2::xy(x1, y1), Point2::xy(x2, y2)));
                }
                "time" => {
                    let t1 = self.number("TIME start")?;
                    let t2 = self.number("TIME end")?;
                    query.time = Some(TimeRange::new(t1 as i64, t2 as i64));
                }
                "grid" => {
                    let nx = self.positive_int("GRID nx")?;
                    let ny = self.positive_int("GRID ny")?;
                    match &mut query.task {
                        Task::Density { grid } => *grid = (nx, ny),
                        _ => return Err(self.error("GRID only applies to DENSITY queries")),
                    }
                }
                "confidence" => {
                    let c = self.number("CONFIDENCE")?;
                    if !(0.0..1.0).contains(&c) || c == 0.0 {
                        return Err(self.error("CONFIDENCE must be in (0, 1)"));
                    }
                    query.termination.confidence = Some(c);
                }
                "error" => {
                    let e = self.number("ERROR")?;
                    if e <= 0.0 {
                        return Err(self.error("ERROR must be positive"));
                    }
                    query.termination.target_error = Some(e);
                }
                "within" => {
                    let ms = self.number("WITHIN (milliseconds)")?;
                    if ms < 0.0 {
                        return Err(self.error("WITHIN must be non-negative"));
                    }
                    query.termination.time_budget_ms = Some(ms as u64);
                }
                "samples" => {
                    query.termination.sample_budget = Some(self.positive_int("SAMPLES")?);
                }
                "method" => {
                    let name = self.word("METHOD")?.to_lowercase();
                    query.method = Some(match name.as_str() {
                        "queryfirst" | "rangereport" => SamplerKind::QueryFirst,
                        "samplefirst" => SamplerKind::SampleFirst,
                        "randompath" | "olken" => SamplerKind::RandomPath,
                        "lstree" | "ls" => SamplerKind::LsTree,
                        "rstree" | "rs" => SamplerKind::RsTree,
                        other => return Err(self.error(&format!("unknown METHOD '{other}'"))),
                    });
                }
                "by" => {
                    let group_field = self.word("the BY group field")?;
                    match &mut query.task {
                        Task::Aggregate {
                            agg: AggFunc::Avg | AggFunc::Sum,
                            by,
                            ..
                        } => {
                            *by = Some(group_field);
                        }
                        _ => return Err(self.error("BY only applies to AVG/SUM aggregates")),
                    }
                }
                "mode" => {
                    let name = self.word("MODE")?.to_lowercase();
                    query.mode = match name.as_str() {
                        "wr" | "withreplacement" => SampleMode::WithReplacement,
                        "wor" | "withoutreplacement" => SampleMode::WithoutReplacement,
                        other => return Err(self.error(&format!("unknown MODE '{other}'"))),
                    };
                }
                other => return Err(self.error(&format!("unknown clause '{other}'"))),
            }
        }
        Ok(query)
    }

    fn task(&mut self) -> Result<Task, QlError> {
        let verb = self
            .peek_keyword()
            .ok_or_else(|| self.error("empty query"))?;
        self.pos += 1;
        match verb.as_str() {
            "estimate" | "select" => self.aggregate(),
            "density" => Ok(Task::Density { grid: (32, 32) }),
            "cluster" => Ok(Task::Cluster {
                k: self.positive_int("CLUSTER k")?,
            }),
            "trajectory" => Ok(Task::Trajectory {
                user: self.word_or_string("TRAJECTORY user")?,
            }),
            "terms" => {
                let k = if matches!(self.tokens.get(self.pos), Some(Token::Number(_))) {
                    self.positive_int("TERMS k")?
                } else {
                    10
                };
                Ok(Task::Terms { k })
            }
            other => Err(self.error(&format!("unknown verb '{other}'"))),
        }
    }

    fn aggregate(&mut self) -> Result<Task, QlError> {
        let func = self.word("the aggregate function")?.to_lowercase();
        match func.as_str() {
            "count" => Ok(Task::Aggregate {
                agg: AggFunc::Count,
                field: String::new(),
                by: None,
            }),
            "avg" | "sum" | "median" => {
                let agg = match func.as_str() {
                    "avg" => AggFunc::Avg,
                    "sum" => AggFunc::Sum,
                    _ => AggFunc::Quantile(0.5),
                };
                let field = self.parenthesised_field()?;
                Ok(Task::Aggregate {
                    agg,
                    field,
                    by: None,
                })
            }
            "quantile" => {
                // QUANTILE(field, p)
                if self.bump() != Some(&Token::LParen) {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected '(' after QUANTILE"));
                }
                let field = self.word("the aggregated field")?;
                if self.bump() != Some(&Token::Comma) {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' after QUANTILE field"));
                }
                let p = self.number("the quantile level")?;
                if !(0.0..1.0).contains(&p) || p == 0.0 {
                    return Err(self.error("quantile level must be in (0, 1)"));
                }
                if self.bump() != Some(&Token::RParen) {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ')' after quantile level"));
                }
                Ok(Task::Aggregate {
                    agg: AggFunc::Quantile(p),
                    field,
                    by: None,
                })
            }
            other => Err(self.error(&format!("unknown aggregate '{other}'"))),
        }
    }

    fn parenthesised_field(&mut self) -> Result<String, QlError> {
        if self.bump() != Some(&Token::LParen) {
            self.pos = self.pos.saturating_sub(1);
            return Err(self.error("expected '(' after aggregate function"));
        }
        let field = self.word("the aggregated field")?;
        if self.bump() != Some(&Token::RParen) {
            self.pos = self.pos.saturating_sub(1);
            return Err(self.error("expected ')' after field"));
        }
        Ok(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_aggregate_query() {
        let q = parse(
            "ESTIMATE AVG(temp) FROM mesowest RANGE -112.3 40.1 -111.0 41.2 \
             TIME 1388534400 1391212800 CONFIDENCE 0.95 ERROR 0.01",
        )
        .unwrap();
        assert_eq!(
            q.task,
            Task::Aggregate {
                agg: AggFunc::Avg,
                field: "temp".into(),
                by: None,
            }
        );
        assert_eq!(q.dataset, "mesowest");
        let r = q.range.unwrap();
        assert_eq!(r.lo().x(), -112.3);
        assert_eq!(r.hi().y(), 41.2);
        assert_eq!(q.time.unwrap(), TimeRange::new(1388534400, 1391212800));
        assert_eq!(q.termination.confidence, Some(0.95));
        assert_eq!(q.termination.target_error, Some(0.01));
        assert!(q.method.is_none());
    }

    #[test]
    fn parses_all_verbs() {
        assert!(matches!(
            parse("ESTIMATE COUNT FROM osm").unwrap().task,
            Task::Aggregate {
                agg: AggFunc::Count,
                ..
            }
        ));
        assert!(matches!(
            parse("ESTIMATE SUM(pop) FROM osm").unwrap().task,
            Task::Aggregate {
                agg: AggFunc::Sum,
                ..
            }
        ));
        assert_eq!(
            parse("DENSITY FROM tweets GRID 64 48").unwrap().task,
            Task::Density { grid: (64, 48) }
        );
        assert_eq!(
            parse("CLUSTER 5 FROM tweets").unwrap().task,
            Task::Cluster { k: 5 }
        );
        assert_eq!(
            parse("TRAJECTORY 'user 1' FROM tweets").unwrap().task,
            Task::Trajectory {
                user: "user 1".into()
            }
        );
        assert_eq!(
            parse("TERMS FROM tweets").unwrap().task,
            Task::Terms { k: 10 }
        );
        assert_eq!(
            parse("TERMS 25 FROM tweets").unwrap().task,
            Task::Terms { k: 25 }
        );
    }

    #[test]
    fn parses_quantile_and_median() {
        assert_eq!(
            parse("ESTIMATE MEDIAN(temp) FROM x").unwrap().task,
            Task::Aggregate {
                agg: AggFunc::Quantile(0.5),
                field: "temp".into(),
                by: None,
            }
        );
        assert_eq!(
            parse("ESTIMATE QUANTILE(temp, 0.9) FROM x").unwrap().task,
            Task::Aggregate {
                agg: AggFunc::Quantile(0.9),
                field: "temp".into(),
                by: None,
            }
        );
        assert!(parse("ESTIMATE QUANTILE(temp, 1.5) FROM x").is_err());
        assert!(parse("ESTIMATE QUANTILE(temp) FROM x").is_err());
    }

    #[test]
    fn parses_method_and_mode() {
        let q = parse("ESTIMATE COUNT FROM osm METHOD lstree MODE wor").unwrap();
        assert_eq!(q.method, Some(SamplerKind::LsTree));
        assert_eq!(q.mode, SampleMode::WithoutReplacement);
        let q = parse("ESTIMATE COUNT FROM osm METHOD samplefirst MODE wr").unwrap();
        assert_eq!(q.method, Some(SamplerKind::SampleFirst));
        assert_eq!(q.mode, SampleMode::WithReplacement);
    }

    #[test]
    fn parses_group_by() {
        let q = parse("ESTIMATE AVG(temp) FROM x BY station").unwrap();
        assert_eq!(
            q.task,
            Task::Aggregate {
                agg: AggFunc::Avg,
                field: "temp".into(),
                by: Some("station".into()),
            }
        );
        assert!(parse("ESTIMATE COUNT FROM x BY station").is_err());
        assert!(parse("ESTIMATE MEDIAN(t) FROM x BY station").is_err());
        assert!(parse("DENSITY FROM x BY station").is_err());
    }

    #[test]
    fn parses_budgets() {
        let q = parse("DENSITY FROM tweets WITHIN 500 SAMPLES 1000").unwrap();
        assert_eq!(q.termination.time_budget_ms, Some(500));
        assert_eq!(q.termination.sample_budget, Some(1000));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "FROM x",
            "ESTIMATE AVG(temp)",       // no FROM
            "ESTIMATE AVG temp FROM x", // missing parens
            "ESTIMATE MODE(t) FROM x",  // unknown aggregate
            "CLUSTER FROM x",           // missing k
            "CLUSTER 0 FROM x",         // k must be >= 1
            "ESTIMATE COUNT FROM x CONFIDENCE 1.5",
            "ESTIMATE COUNT FROM x ERROR -1",
            "ESTIMATE COUNT FROM x METHOD quantum",
            "ESTIMATE COUNT FROM x BOGUS 1",
            "ESTIMATE COUNT FROM x GRID 4 4", // GRID on non-density
            "ESTIMATE COUNT FROM x RANGE 1 2 3", // incomplete range
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn range_corners_normalise() {
        let q = parse("ESTIMATE COUNT FROM x RANGE 10 10 0 0").unwrap();
        let r = q.range.unwrap();
        assert_eq!(r.lo(), Point2::xy(0.0, 0.0));
        assert_eq!(r.hi(), Point2::xy(10.0, 10.0));
    }
}
