//! STORM-QL: the keyword query language and query optimizer.
//!
//! STORM's "query interface supports a keyword based query language with a
//! query parser, where predefined keywords are used to specify an
//! aggregation or an analytical task" together with "a temporal range and
//! a spatial region" (paper §3.2). This crate implements:
//!
//! * the [`lexer`] and recursive-descent [`parser`] producing an [`ast::Query`];
//! * the [`plan`] module, which resolves a parsed query against a data
//!   set's statistics and asks the cost model (in `storm-core`) which
//!   sampling method to use — the paper's query optimizer.
//!
//! Example queries:
//!
//! ```text
//! ESTIMATE AVG(temp) FROM mesowest RANGE -112.3 40.1 -111.0 41.2
//!     TIME 1388534400 1391212800 CONFIDENCE 0.95 ERROR 0.01
//! DENSITY FROM tweets RANGE -112 40 -111 41 GRID 64 64 WITHIN 500
//! CLUSTER 5 FROM tweets RANGE -125 25 -66 49 SAMPLES 2000
//! TRAJECTORY 'user_17' FROM tweets TIME 100 900
//! TERMS 10 FROM tweets RANGE -84.6 33.6 -84.2 33.9 TIME 100 200
//! ESTIMATE COUNT FROM osm RANGE 0 0 10 10 METHOD rstree
//! ```
//!
//! Execution lives in `storm-engine`, which binds a [`plan::Plan`] to a
//! concrete data set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{AggFunc, Query, Task, Termination};
pub use parser::parse;
pub use plan::{DatasetStats, Plan};

/// Errors from parsing or planning STORM-QL.
#[derive(Debug, Clone, PartialEq)]
pub enum QlError {
    /// The input could not be tokenised.
    Lex {
        /// Byte offset.
        offset: usize,
        /// Explanation.
        message: String,
    },
    /// The token stream does not form a valid query.
    Parse {
        /// Explanation with context.
        message: String,
    },
    /// The query is well-formed but cannot be planned.
    Plan {
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for QlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QlError::Lex { offset, message } => write!(f, "lex error at byte {offset}: {message}"),
            QlError::Parse { message } => write!(f, "parse error: {message}"),
            QlError::Plan { message } => write!(f, "planning error: {message}"),
        }
    }
}

impl std::error::Error for QlError {}
