//! Query planning: resolving a parsed query against data-set statistics
//! and choosing the sampling method.

use storm_core::cost::{self, CostInputs};
use storm_core::{SampleMode, SamplerKind};
use storm_geo::{Rect2, StQuery};

use crate::ast::{Query, Task};
use crate::QlError;

/// The statistics the optimizer consults (all maintained by the engine,
/// none require touching the data).
#[derive(Debug, Clone, Copy)]
pub struct DatasetStats {
    /// Data set size `N`.
    pub n: usize,
    /// Spatial extent of the data.
    pub bounds: Rect2,
    /// Height of the base R-tree.
    pub height: u32,
    /// Block size / fanout `B`.
    pub block: usize,
}

/// A planned query, ready for the executor.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The original query.
    pub query: Query,
    /// The resolved spatio-temporal range.
    pub st_query: StQuery,
    /// The sampling method the executor should use.
    pub sampler: SamplerKind,
    /// The estimated result size the plan was based on.
    pub q_est: usize,
    /// Expected samples the consumer will pull (from budgets, or a default
    /// working-set guess for quality-driven queries).
    pub k_est: usize,
}

/// Default `k` guess when the query gives no sample budget: enough for a
/// sub-percent standard error on typical attribute distributions.
pub const DEFAULT_K_GUESS: usize = 1024;

/// Plans a query.
///
/// `q_est` is the caller's estimate of `|P ∩ Q|` (the engine gets it
/// exactly from aggregate counts in `O(r(N))`).
pub fn plan(query: Query, stats: &DatasetStats, q_est: usize) -> Result<Plan, QlError> {
    let rect = query.range.unwrap_or(stats.bounds);
    let st_query = StQuery::new(rect, query.time_range());
    if st_query.to_rect3().is_none() {
        return Err(QlError::Plan {
            message: "the TIME range is empty".into(),
        });
    }
    let k_est = query
        .termination
        .sample_budget
        .unwrap_or(DEFAULT_K_GUESS)
        .min(q_est.max(1));
    // Tasks that must see every matching record (exact COUNT via index
    // counts is handled by the executor without sampling at all).
    let sampler = match query.method {
        Some(kind) => {
            if kind == SamplerKind::LsTree && query.mode == SampleMode::WithReplacement {
                return Err(QlError::Plan {
                    message: "the LS-tree only supports MODE wor".into(),
                });
            }
            kind
        }
        None => cost::recommend(
            &CostInputs {
                n: stats.n,
                q_est,
                k_est,
                block: stats.block,
                height: stats.height,
            },
            query.mode,
        ),
    };
    if let Task::Density { grid } = &query.task {
        if grid.0 * grid.1 > 1_000_000 {
            return Err(QlError::Plan {
                message: "DENSITY grid too large (max 10^6 cells)".into(),
            });
        }
    }
    Ok(Plan {
        query,
        st_query,
        sampler,
        q_est,
        k_est,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use storm_geo::Point2;

    fn stats() -> DatasetStats {
        DatasetStats {
            n: 10_000_000,
            bounds: Rect2::from_corners(Point2::xy(-180.0, -90.0), Point2::xy(180.0, 90.0)),
            height: 4,
            block: 64,
        }
    }

    #[test]
    fn optimizer_chooses_an_index_method_for_selective_queries() {
        let q = parse("ESTIMATE AVG(alt) FROM osm RANGE 0 0 10 10 SAMPLES 100").unwrap();
        let p = plan(q, &stats(), 1_000_000).unwrap();
        assert!(
            matches!(p.sampler, SamplerKind::RsTree | SamplerKind::LsTree),
            "{:?}",
            p.sampler
        );
        assert_eq!(p.k_est, 100);
    }

    #[test]
    fn forced_method_wins() {
        let q = parse("ESTIMATE AVG(alt) FROM osm METHOD randompath").unwrap();
        let p = plan(q, &stats(), 1_000_000).unwrap();
        assert_eq!(p.sampler, SamplerKind::RandomPath);
    }

    #[test]
    fn ls_with_replacement_is_rejected() {
        let q = parse("ESTIMATE AVG(alt) FROM osm METHOD lstree MODE wr").unwrap();
        assert!(plan(q, &stats(), 1000).is_err());
    }

    #[test]
    fn missing_range_defaults_to_data_bounds() {
        let q = parse("ESTIMATE COUNT FROM osm").unwrap();
        let p = plan(q, &stats(), 10_000_000).unwrap();
        assert_eq!(p.st_query.rect, stats().bounds);
    }

    #[test]
    fn empty_time_range_fails_planning() {
        let q = parse("ESTIMATE COUNT FROM osm TIME 100 100").unwrap();
        assert!(plan(q, &stats(), 100).is_err());
    }

    #[test]
    fn tiny_results_force_query_first() {
        let q = parse("ESTIMATE AVG(alt) FROM osm RANGE 0 0 1 1").unwrap();
        let p = plan(q, &stats(), 50).unwrap(); // k_est >= q
        assert_eq!(p.sampler, SamplerKind::QueryFirst);
    }

    #[test]
    fn oversized_density_grid_is_rejected() {
        let q = parse("DENSITY FROM t GRID 2000 2000").unwrap();
        assert!(plan(q, &stats(), 1000).is_err());
    }
}
