//! Spatio-temporal points and queries.
//!
//! STORM's query interface specifies "a temporal range and a spatial region
//! (on a map)" (paper §3.2). This module provides those shapes and the
//! embedding of `(space, time)` into a 3-D point so a single `R^3` R-tree
//! can index both extents, as the ST-indexing module requires.

use crate::{Point2, Point3, Rect2, Rect3, TimeRange};

/// A spatio-temporal event: a 2-D location plus a timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StPoint {
    /// Spatial location.
    pub xy: Point2,
    /// Timestamp (integer epoch; unit is up to the data set).
    pub t: i64,
}

impl StPoint {
    /// Creates a spatio-temporal point.
    pub const fn new(x: f64, y: f64, t: i64) -> Self {
        StPoint {
            xy: Point2::xy(x, y),
            t,
        }
    }

    /// Embeds the point in `R^3` with time as the third coordinate.
    ///
    /// `i64` timestamps up to ±2^53 convert exactly; beyond that the cast
    /// rounds, which is acceptable for epoch seconds/milliseconds through
    /// year ~287396.
    pub fn to_point3(&self) -> Point3 {
        Point3::xyz(self.xy.x(), self.xy.y(), self.t as f64)
    }
}

/// A spatio-temporal range query `Q`: a spatial rectangle plus a time range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StQuery {
    /// The spatial region.
    pub rect: Rect2,
    /// The temporal extent.
    pub time: TimeRange,
}

impl StQuery {
    /// Creates a query from a spatial rectangle and time range.
    pub const fn new(rect: Rect2, time: TimeRange) -> Self {
        StQuery { rect, time }
    }

    /// A purely spatial query (any time).
    pub const fn spatial(rect: Rect2) -> Self {
        StQuery {
            rect,
            time: TimeRange::all(),
        }
    }

    /// True iff the event satisfies both the spatial and temporal predicate.
    #[inline]
    pub fn contains(&self, p: &StPoint) -> bool {
        self.time.contains(p.t) && self.rect.contains_point(&p.xy)
    }

    /// The query as a 3-D box matching [`StPoint::to_point3`].
    ///
    /// The time axis uses `[start, end - 1]` so the closed 3-D box matches
    /// the half-open [`TimeRange`] on integer timestamps. Empty time ranges
    /// yield `None`.
    pub fn to_rect3(&self) -> Option<Rect3> {
        if self.time.is_empty() {
            return None;
        }
        let lo = Point3::xyz(
            self.rect.lo().x(),
            self.rect.lo().y(),
            saturating_f64(self.time.start()),
        );
        let hi = Point3::xyz(
            self.rect.hi().x(),
            self.rect.hi().y(),
            saturating_f64(self.time.end().saturating_sub(1)),
        );
        Rect3::new(lo, hi).ok()
    }
}

/// Converts an i64 timestamp to f64, mapping the sentinels `i64::MIN/MAX`
/// used by [`TimeRange::all`] to infinities so "all time" stays all time.
fn saturating_f64(t: i64) -> f64 {
    if t == i64::MIN {
        f64::NEG_INFINITY
    } else if t >= i64::MAX - 1 {
        f64::INFINITY
    } else {
        t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point2;

    fn q(ax: f64, ay: f64, bx: f64, by: f64, t0: i64, t1: i64) -> StQuery {
        StQuery::new(
            Rect2::from_corners(Point2::xy(ax, ay), Point2::xy(bx, by)),
            TimeRange::new(t0, t1),
        )
    }

    #[test]
    fn contains_checks_both_extents() {
        let query = q(0.0, 0.0, 10.0, 10.0, 100, 200);
        assert!(query.contains(&StPoint::new(5.0, 5.0, 150)));
        assert!(!query.contains(&StPoint::new(5.0, 5.0, 200))); // time half-open
        assert!(!query.contains(&StPoint::new(11.0, 5.0, 150)));
        assert!(query.contains(&StPoint::new(10.0, 10.0, 100))); // space closed
    }

    #[test]
    fn rect3_embedding_agrees_with_contains() {
        let query = q(0.0, 0.0, 10.0, 10.0, 100, 200);
        let r3 = query.to_rect3().unwrap();
        for (p, expect) in [
            (StPoint::new(5.0, 5.0, 150), true),
            (StPoint::new(5.0, 5.0, 199), true),
            (StPoint::new(5.0, 5.0, 200), false),
            (StPoint::new(5.0, 5.0, 99), false),
            (StPoint::new(-0.1, 5.0, 150), false),
        ] {
            assert_eq!(query.contains(&p), expect);
            assert_eq!(r3.contains_point(&p.to_point3()), expect, "{p:?}");
        }
    }

    #[test]
    fn empty_time_range_has_no_rect3() {
        assert!(q(0.0, 0.0, 1.0, 1.0, 5, 5).to_rect3().is_none());
    }

    #[test]
    fn all_time_maps_to_infinite_axis() {
        let query = StQuery::spatial(Rect2::from_corners(
            Point2::xy(0.0, 0.0),
            Point2::xy(1.0, 1.0),
        ));
        let r3 = query.to_rect3().unwrap();
        assert!(r3.contains_point(&StPoint::new(0.5, 0.5, i64::MAX / 2).to_point3()));
        assert!(r3.contains_point(&StPoint::new(0.5, 0.5, i64::MIN / 2).to_point3()));
    }
}
