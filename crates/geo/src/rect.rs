//! Axis-aligned rectangles (hyper-boxes) and the algebra an R-tree needs.

use crate::{GeoError, Point};

/// An axis-aligned, closed rectangle in `D` dimensions, `[lo, hi]` per axis.
///
/// Rectangles serve two roles in STORM: as bounding boxes inside R-tree
/// nodes, and as the spatial component of a range query `Q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    lo: Point<D>,
    hi: Point<D>,
}

/// A 2-dimensional rectangle.
pub type Rect2 = Rect<2>;
/// A 3-dimensional box (x, y, time).
pub type Rect3 = Rect<3>;

impl<const D: usize> Rect<D> {
    /// Creates a rectangle, validating that `lo <= hi` on every axis.
    pub fn new(lo: Point<D>, hi: Point<D>) -> Result<Self, GeoError> {
        for axis in 0..D {
            if lo.get(axis) > hi.get(axis) {
                return Err(GeoError::InvalidRect { axis });
            }
        }
        Ok(Rect { lo, hi })
    }

    /// Creates a rectangle from two arbitrary corner points, swapping
    /// coordinates as needed so the result is always valid.
    pub fn from_corners(a: Point<D>, b: Point<D>) -> Self {
        Rect {
            lo: a.min(&b),
            hi: a.max(&b),
        }
    }

    /// The degenerate rectangle containing exactly one point.
    pub fn from_point(p: Point<D>) -> Self {
        Rect { lo: p, hi: p }
    }

    /// The smallest rectangle enclosing every point in `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn bounding(points: &[Point<D>]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut r = Rect::from_point(*first);
        for p in rest {
            r = r.enlarged_to_point(p);
        }
        Some(r)
    }

    /// A rectangle covering all of representable space.
    pub fn everything() -> Self {
        Rect {
            lo: Point::new([f64::NEG_INFINITY; D]),
            hi: Point::new([f64::INFINITY; D]),
        }
    }

    /// Lower corner.
    #[inline]
    pub const fn lo(&self) -> Point<D> {
        self.lo
    }

    /// Upper corner.
    #[inline]
    pub const fn hi(&self) -> Point<D> {
        self.hi
    }

    /// Extent along `axis` (`hi - lo`).
    #[inline]
    pub fn extent(&self, axis: usize) -> f64 {
        self.hi.get(axis) - self.lo.get(axis)
    }

    /// The center point.
    pub fn center(&self) -> Point<D> {
        self.lo.lerp(&self.hi, 0.5)
    }

    /// True iff `p` lies inside the closed box.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        for axis in 0..D {
            let c = p.get(axis);
            if c < self.lo.get(axis) || c > self.hi.get(axis) {
                return false;
            }
        }
        true
    }

    /// True iff `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        for axis in 0..D {
            if other.lo.get(axis) < self.lo.get(axis) || other.hi.get(axis) > self.hi.get(axis) {
                return false;
            }
        }
        true
    }

    /// True iff the closed boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        for axis in 0..D {
            if other.hi.get(axis) < self.lo.get(axis) || other.lo.get(axis) > self.hi.get(axis) {
                return false;
            }
        }
        true
    }

    /// The intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect<D>) -> Option<Rect<D>> {
        let lo = self.lo.max(&other.lo);
        let hi = self.hi.min(&other.hi);
        Rect::new(lo, hi).ok()
    }

    /// The smallest rectangle containing both boxes.
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        Rect {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// The smallest rectangle containing `self` and `p`.
    pub fn enlarged_to_point(&self, p: &Point<D>) -> Rect<D> {
        Rect {
            lo: self.lo.min(p),
            hi: self.hi.max(p),
        }
    }

    /// Hyper-volume (`0` for degenerate boxes).
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for axis in 0..D {
            a *= self.extent(axis);
        }
        a
    }

    /// Sum of extents — the R*-tree "margin" heuristic.
    pub fn margin(&self) -> f64 {
        (0..D).map(|axis| self.extent(axis)).sum()
    }

    /// How much `self.area()` would grow if enlarged to cover `other`.
    ///
    /// This is the classic Guttman `ChooseSubtree` metric.
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (0 when `p` is inside).
    pub fn dist_sq_to_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for axis in 0..D {
            let c = p.get(axis);
            let d = if c < self.lo.get(axis) {
                self.lo.get(axis) - c
            } else if c > self.hi.get(axis) {
                c - self.hi.get(axis)
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

impl<const D: usize> std::fmt::Display for Rect<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point2;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect2 {
        Rect::new(Point2::xy(ax, ay), Point2::xy(bx, by)).unwrap()
    }

    #[test]
    fn new_validates_ordering() {
        assert!(Rect::new(Point2::xy(1.0, 0.0), Point2::xy(0.0, 1.0)).is_err());
        assert_eq!(
            Rect::new(Point2::xy(1.0, 0.0), Point2::xy(0.0, 1.0)).unwrap_err(),
            GeoError::InvalidRect { axis: 0 }
        );
        assert!(Rect::new(Point2::xy(0.0, 0.0), Point2::xy(0.0, 0.0)).is_ok());
    }

    #[test]
    fn from_corners_swaps() {
        let a = Rect::from_corners(Point2::xy(2.0, 0.0), Point2::xy(0.0, 3.0));
        assert_eq!(a, r(0.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn containment() {
        let big = r(0.0, 0.0, 10.0, 10.0);
        assert!(big.contains_point(&Point2::xy(0.0, 0.0)));
        assert!(big.contains_point(&Point2::xy(10.0, 10.0)));
        assert!(!big.contains_point(&Point2::xy(10.0, 10.1)));
        assert!(big.contains_rect(&r(1.0, 1.0, 9.0, 9.0)));
        assert!(big.contains_rect(&big));
        assert!(!big.contains_rect(&r(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap(), r(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.union(&b), r(0.0, 0.0, 6.0, 6.0));

        let c = r(5.0, 5.0, 7.0, 7.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
        // Touching edges count as intersecting (closed boxes).
        let d = r(4.0, 0.0, 5.0, 4.0);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection(&d).unwrap().area(), 0.0);
    }

    #[test]
    fn metrics() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.center(), Point2::xy(1.0, 1.5));
        assert_eq!(a.enlargement(&r(0.0, 0.0, 4.0, 3.0)), 6.0);
        assert_eq!(a.enlargement(&r(1.0, 1.0, 2.0, 2.0)), 0.0);
    }

    #[test]
    fn bounding_of_points() {
        assert!(Rect2::bounding(&[]).is_none());
        let pts = [
            Point2::xy(1.0, 5.0),
            Point2::xy(-1.0, 2.0),
            Point2::xy(3.0, 3.0),
        ];
        assert_eq!(Rect2::bounding(&pts).unwrap(), r(-1.0, 2.0, 3.0, 5.0));
    }

    #[test]
    fn dist_to_point() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.dist_sq_to_point(&Point2::xy(1.0, 1.0)), 0.0);
        assert_eq!(a.dist_sq_to_point(&Point2::xy(5.0, 2.0)), 9.0);
        assert_eq!(a.dist_sq_to_point(&Point2::xy(5.0, 6.0)), 25.0);
    }

    #[test]
    fn everything_contains_all() {
        let e = Rect2::everything();
        assert!(e.contains_point(&Point2::xy(1e308, -1e308)));
    }
}
