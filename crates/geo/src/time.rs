//! Temporal intervals.

/// A half-open time interval `[start, end)` over integer timestamps
/// (seconds or milliseconds — STORM is agnostic, it only compares).
///
/// Half-open intervals compose cleanly: adjacent ranges neither overlap nor
/// leave gaps, which is what the update manager relies on when narrowing a
/// query "down to the most recent time history" (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    start: i64,
    end: i64,
}

impl TimeRange {
    /// Creates `[start, end)`; callers may pass `start >= end` to denote an
    /// empty range.
    pub const fn new(start: i64, end: i64) -> Self {
        TimeRange { start, end }
    }

    /// The range covering all representable time.
    pub const fn all() -> Self {
        TimeRange {
            start: i64::MIN,
            end: i64::MAX,
        }
    }

    /// Inclusive lower bound.
    pub const fn start(&self) -> i64 {
        self.start
    }

    /// Exclusive upper bound.
    pub const fn end(&self) -> i64 {
        self.end
    }

    /// True when the range contains no instants.
    pub const fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Number of instants in the range (0 for empty ranges).
    pub const fn len(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.end - self.start
        }
    }

    /// True iff `t` lies in `[start, end)`.
    #[inline]
    pub const fn contains(&self, t: i64) -> bool {
        self.start <= t && t < self.end
    }

    /// True iff the two ranges share at least one instant.
    pub const fn overlaps(&self, other: &TimeRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The overlapping part of the two ranges (possibly empty).
    pub fn intersection(&self, other: &TimeRange) -> TimeRange {
        TimeRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// True iff every instant of `other` lies in `self`.
    pub const fn contains_range(&self, other: &TimeRange) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_semantics() {
        let r = TimeRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn empty_ranges() {
        assert!(TimeRange::new(5, 5).is_empty());
        assert!(TimeRange::new(6, 5).is_empty());
        assert_eq!(TimeRange::new(6, 5).len(), 0);
        assert!(!TimeRange::new(5, 5).contains(5));
        assert!(!TimeRange::new(5, 5).overlaps(&TimeRange::new(0, 10)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(5, 15);
        let c = TimeRange::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // adjacent half-open ranges do not overlap
        assert_eq!(a.intersection(&b), TimeRange::new(5, 10));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn containment() {
        let a = TimeRange::new(0, 100);
        assert!(a.contains_range(&TimeRange::new(0, 100)));
        assert!(a.contains_range(&TimeRange::new(10, 20)));
        assert!(a.contains_range(&TimeRange::new(50, 50))); // empty is contained anywhere
        assert!(!a.contains_range(&TimeRange::new(-1, 5)));
    }

    #[test]
    fn all_covers_everything() {
        assert!(TimeRange::all().contains(i64::MIN));
        assert!(TimeRange::all().contains(i64::MAX - 1));
    }
}
