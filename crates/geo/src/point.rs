//! `D`-dimensional points over `f64`.

use crate::GeoError;

/// A point in `D`-dimensional Euclidean space.
///
/// STORM indexes points in `R^d` (paper, Definition 1); in practice the
/// system uses `D = 2` for purely spatial data and `D = 3` for
/// spatio-temporal data where the third axis is (scaled) time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

/// A 2-dimensional point (longitude/latitude or planar x/y).
pub type Point2 = Point<2>;
/// A 3-dimensional point (x, y, time).
pub type Point3 = Point<3>;

impl<const D: usize> Point<D> {
    /// Creates a point from raw coordinates.
    ///
    /// Coordinates may be any `f64`, including non-finite values; use
    /// [`Point::try_new`] when inputs are untrusted.
    pub const fn new(coords: [f64; D]) -> Self {
        Point { coords }
    }

    /// Creates a point, rejecting NaN and infinite coordinates.
    pub fn try_new(coords: [f64; D]) -> Result<Self, GeoError> {
        if coords.iter().all(|c| c.is_finite()) {
            Ok(Point { coords })
        } else {
            Err(GeoError::NonFiniteCoordinate)
        }
    }

    /// The point at the origin.
    pub const fn origin() -> Self {
        Point { coords: [0.0; D] }
    }

    /// Returns the raw coordinate array.
    #[inline]
    pub const fn coords(&self) -> [f64; D] {
        self.coords
    }

    /// Returns the coordinate on `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= D`.
    #[inline]
    pub fn get(&self, axis: usize) -> f64 {
        self.coords[axis]
    }

    /// Returns a copy with the coordinate on `axis` replaced by `value`.
    #[inline]
    pub fn with(&self, axis: usize, value: f64) -> Self {
        let mut coords = self.coords;
        coords[axis] = value;
        Point { coords }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c = c.min(*o);
        }
        Point { coords }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c = c.max(*o);
        }
        Point { coords }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c += t * (*o - *c);
        }
        Point { coords }
    }

    /// True when every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl Point2 {
    /// Convenience constructor for 2-D points.
    pub const fn xy(x: f64, y: f64) -> Self {
        Point::new([x, y])
    }

    /// The x (first) coordinate.
    #[inline]
    pub fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The y (second) coordinate.
    #[inline]
    pub fn y(&self) -> f64 {
        self.coords[1]
    }
}

impl Point3 {
    /// Convenience constructor for 3-D points.
    pub const fn xyz(x: f64, y: f64, z: f64) -> Self {
        Point::new([x, y, z])
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Point::new(coords)
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point::origin()
    }
}

impl<const D: usize> std::fmt::Display for Point<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = Point2::xy(1.5, -2.0);
        assert_eq!(p.x(), 1.5);
        assert_eq!(p.y(), -2.0);
        assert_eq!(p.get(0), 1.5);
        assert_eq!(p.coords(), [1.5, -2.0]);
        assert_eq!(Point::<2>::origin(), Point2::xy(0.0, 0.0));
        assert_eq!(
            Point::<3>::from([1.0, 2.0, 3.0]),
            Point3::xyz(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn try_new_rejects_non_finite() {
        assert!(Point2::try_new([f64::NAN, 0.0]).is_err());
        assert!(Point2::try_new([0.0, f64::INFINITY]).is_err());
        assert!(Point2::try_new([0.0, 1.0]).is_ok());
    }

    #[test]
    fn distances() {
        let a = Point2::xy(0.0, 0.0);
        let b = Point2::xy(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn min_max_lerp() {
        let a = Point2::xy(0.0, 4.0);
        let b = Point2::xy(2.0, 1.0);
        assert_eq!(a.min(&b), Point2::xy(0.0, 1.0));
        assert_eq!(a.max(&b), Point2::xy(2.0, 4.0));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point2::xy(1.0, 2.5));
    }

    #[test]
    fn with_replaces_single_axis() {
        let p = Point3::xyz(1.0, 2.0, 3.0);
        assert_eq!(p.with(1, 9.0), Point3::xyz(1.0, 9.0, 3.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point2::xy(1.0, 2.0).to_string(), "(1, 2)");
    }
}
