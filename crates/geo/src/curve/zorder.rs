//! The Z-order (Morton) curve.

use super::SpaceFillingCurve;

/// A 2-D Z-order curve over a `2^order × 2^order` grid.
///
/// The Z-order index is simply the bit-interleaving of the cell
/// coordinates. It is much cheaper to evaluate than the Hilbert curve but
/// has weaker locality (long diagonal jumps between quadrants), which is
/// exactly the trade-off STORM's ablation benchmark measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZOrderCurve {
    order: u32,
}

impl ZOrderCurve {
    /// Creates a curve with `order` bits per dimension (`1..=31`).
    pub fn new(order: u32) -> Option<Self> {
        if (1..=super::hilbert::MAX_ORDER).contains(&order) {
            Some(ZOrderCurve { order })
        } else {
            None
        }
    }

    /// Spreads the low 32 bits of `v` so bit `i` moves to bit `2i`.
    #[inline]
    fn spread(v: u32) -> u64 {
        let mut x = u64::from(v);
        x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }

    /// Inverse of [`ZOrderCurve::spread`]: collects every other bit.
    #[inline]
    fn compact(v: u64) -> u32 {
        let mut x = v & 0x5555_5555_5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
        x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
        x as u32
    }
}

impl SpaceFillingCurve for ZOrderCurve {
    fn order(&self) -> u32 {
        self.order
    }

    fn index_of_cell(&self, x: u32, y: u32) -> u64 {
        debug_assert!(u64::from(x) < (1u64 << self.order));
        debug_assert!(u64::from(y) < (1u64 << self.order));
        Self::spread(x) | (Self::spread(y) << 1)
    }

    fn cell_of_index(&self, d: u64) -> (u32, u32) {
        (Self::compact(d), Self::compact(d >> 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_small_values() {
        let c = ZOrderCurve::new(4).unwrap();
        assert_eq!(c.index_of_cell(0, 0), 0);
        assert_eq!(c.index_of_cell(1, 0), 1);
        assert_eq!(c.index_of_cell(0, 1), 2);
        assert_eq!(c.index_of_cell(1, 1), 3);
        assert_eq!(c.index_of_cell(2, 0), 4);
        assert_eq!(c.index_of_cell(3, 3), 15);
    }

    #[test]
    fn round_trip_exhaustive_order_5() {
        let c = ZOrderCurve::new(5).unwrap();
        for x in 0..32u32 {
            for y in 0..32u32 {
                let d = c.index_of_cell(x, y);
                assert_eq!(c.cell_of_index(d), (x, y));
            }
        }
    }

    #[test]
    fn round_trip_high_bits() {
        let c = ZOrderCurve::new(31).unwrap();
        for &(x, y) in &[
            (0x7FFF_FFFFu32, 0u32),
            (0, 0x7FFF_FFFF),
            (0x1234_5678, 0x7654_3210 & 0x7FFF_FFFF),
        ] {
            let d = c.index_of_cell(x, y);
            assert_eq!(c.cell_of_index(d), (x, y));
        }
    }

    #[test]
    fn zorder_is_monotone_in_each_coordinate() {
        let c = ZOrderCurve::new(8).unwrap();
        // Fixing y, increasing x strictly increases the index.
        let mut prev = c.index_of_cell(0, 7);
        for x in 1..256u32 {
            let cur = c.index_of_cell(x, 7);
            assert!(cur > prev);
            prev = cur;
        }
    }
}
