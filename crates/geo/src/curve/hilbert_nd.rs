//! N-dimensional Hilbert curve (Skilling's transform).
//!
//! STORM's ST-indexing packs *spatio-temporal* points — `(x, y, t)` in
//! `R^3` — along a Hilbert curve, so the 2-D curve in
//! [`hilbert`](super::hilbert) is not enough. This module implements John
//! Skilling's compact transpose-based algorithm ("Programming the Hilbert
//! curve", AIP Conf. Proc. 707, 2004), which generalises to any dimension.
//!
//! The curve is exposed through [`hilbert_key`], mapping a grid cell in
//! `[0, 2^bits)^D` to its 1-D rank in `[0, 2^(D*bits))`. For `D * bits <= 64`
//! the rank fits a `u64`.

/// In-place: converts axis coordinates to the "transposed" Hilbert form.
///
/// After the call, bit `j` of the Hilbert index (counting from the most
/// significant of the `dims*bits` index bits) lives in bit `bits-1-(j/dims)`
/// of `x[j % dims]`.
fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    // Inverse undo
    let mut q = 1u32 << (bits - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = 1u32 << (bits - 1);
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// In-place inverse of [`axes_to_transpose`].
fn transpose_to_axes(x: &mut [u32], bits: u32) {
    let n = x.len();
    // Gray decode
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work
    let mut q = 2u32;
    while q != (1u32 << bits) {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Maps a `D`-dimensional grid cell to its Hilbert rank.
///
/// `coords[i]` must be `< 2^bits` and `D * bits <= 64`.
///
/// # Panics
/// Panics (in debug builds) when a coordinate exceeds the grid or the rank
/// would overflow a `u64`.
pub fn hilbert_key<const D: usize>(coords: [u32; D], bits: u32) -> u64 {
    debug_assert!(bits >= 1 && (D as u32) * bits <= 64);
    debug_assert!(coords.iter().all(|&c| bits == 32 || c < (1u32 << bits)));
    let mut x = coords;
    if bits == 1 && D == 1 {
        return u64::from(x[0]);
    }
    axes_to_transpose(&mut x, bits);
    // Interleave: MSB-first across dimensions.
    let mut key: u64 = 0;
    for j in (0..bits).rev() {
        for v in x.iter().take(D) {
            key = (key << 1) | u64::from((v >> j) & 1);
        }
    }
    key
}

/// Inverse of [`hilbert_key`].
pub fn hilbert_cell<const D: usize>(key: u64, bits: u32) -> [u32; D] {
    debug_assert!(bits >= 1 && (D as u32) * bits <= 64);
    let mut x = [0u32; D];
    let total = (D as u32) * bits;
    for j in 0..total {
        let bit = (key >> (total - 1 - j)) & 1;
        let dim = (j as usize) % D;
        let pos = bits - 1 - (j / D as u32);
        x[dim] |= (bit as u32) << pos;
    }
    if !(bits == 1 && D == 1) {
        transpose_to_axes(&mut x, bits);
    }
    x
}

/// Default bit budget for a `D`-dimensional key in a `u64`.
pub const fn default_bits(dims: usize) -> u32 {
    let b = 64 / dims as u32;
    if b > 31 {
        31
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_2d_exhaustive() {
        let bits = 4;
        for x in 0..16u32 {
            for y in 0..16u32 {
                let k = hilbert_key([x, y], bits);
                assert_eq!(hilbert_cell::<2>(k, bits), [x, y]);
            }
        }
    }

    #[test]
    fn round_trip_3d_exhaustive_small() {
        let bits = 3;
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    let k = hilbert_key([x, y, z], bits);
                    assert!(k < 1 << 9);
                    assert_eq!(hilbert_cell::<3>(k, bits), [x, y, z]);
                }
            }
        }
    }

    #[test]
    fn keys_are_a_bijection_2d() {
        let bits = 4;
        let mut seen = vec![false; 256];
        for x in 0..16u32 {
            for y in 0..16u32 {
                let k = hilbert_key([x, y], bits) as usize;
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn consecutive_keys_are_grid_neighbours_3d() {
        let bits = 3;
        let mut prev = hilbert_cell::<3>(0, bits);
        for k in 1..(1u64 << 9) {
            let cur = hilbert_cell::<3>(k, bits);
            let dist: i64 = (0..3)
                .map(|i| (i64::from(cur[i]) - i64::from(prev[i])).abs())
                .sum();
            assert_eq!(dist, 1, "jump at key {k}");
            prev = cur;
        }
    }

    #[test]
    fn high_bit_round_trip() {
        // 2 dims × 31 bits, 3 dims × 21 bits
        for &(x, y) in &[
            (0x7FFF_FFFFu32, 0u32),
            (0x1234_5678, 0x7ABC_DEF0 & 0x7FFF_FFFF),
        ] {
            let k = hilbert_key([x, y], 31);
            assert_eq!(hilbert_cell::<2>(k, 31), [x, y]);
        }
        let c = [0x1F_FFFFu32, 0, 0x10_0000];
        let k = hilbert_key(c, 21);
        assert_eq!(hilbert_cell::<3>(k, 21), c);
    }

    #[test]
    fn default_bits_fits_u64() {
        assert_eq!(default_bits(2), 31);
        assert_eq!(default_bits(3), 21);
        assert_eq!(default_bits(4), 16);
    }
}
