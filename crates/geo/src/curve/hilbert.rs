//! The 2-D Hilbert curve.

use super::SpaceFillingCurve;

/// A 2-D Hilbert curve over a `2^order × 2^order` grid.
///
/// The Hilbert curve has the best locality of the classical space-filling
/// curves: points close on the curve are close in space, and (unlike
/// Z-order) there are no long "jumps". STORM uses it to pack the RS-tree's
/// leaves and to range-partition data across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilbertCurve {
    order: u32,
}

/// Maximum supported order; `2 * 31 = 62` index bits fit in a `u64`.
pub const MAX_ORDER: u32 = 31;

impl HilbertCurve {
    /// Creates a curve with `order` bits per dimension (`1..=31`).
    pub fn new(order: u32) -> Option<Self> {
        if (1..=MAX_ORDER).contains(&order) {
            Some(HilbertCurve { order })
        } else {
            None
        }
    }

    /// Number of cells along one side of the grid.
    pub fn side(&self) -> u64 {
        1u64 << self.order
    }

    /// Total number of cells (`side²`).
    pub fn cells(&self) -> u64 {
        1u64 << (2 * self.order)
    }

    #[inline]
    fn rotate(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
        if ry == 0 {
            if rx == 1 {
                *x = s - 1 - *x;
                *y = s - 1 - *y;
            }
            std::mem::swap(x, y);
        }
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn order(&self) -> u32 {
        self.order
    }

    fn index_of_cell(&self, x: u32, y: u32) -> u64 {
        debug_assert!(u64::from(x) < self.side() && u64::from(y) < self.side());
        let mut x = u64::from(x);
        let mut y = u64::from(y);
        let mut d: u64 = 0;
        let n = self.side();
        let mut s = n / 2;
        while s > 0 {
            let rx = u64::from(x & s > 0);
            let ry = u64::from(y & s > 0);
            d += s * s * ((3 * rx) ^ ry);
            // The reflection is about the full grid, not the current level.
            Self::rotate(n, &mut x, &mut y, rx, ry);
            s /= 2;
        }
        d
    }

    fn cell_of_index(&self, d: u64) -> (u32, u32) {
        debug_assert!(d < self.cells());
        let mut t = d;
        let mut x: u64 = 0;
        let mut y: u64 = 0;
        let mut s: u64 = 1;
        while s < self.side() {
            let rx = 1 & (t / 2);
            let ry = 1 & (t ^ rx);
            Self::rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        (x as u32, y as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_orders() {
        assert!(HilbertCurve::new(0).is_none());
        assert!(HilbertCurve::new(32).is_none());
        assert!(HilbertCurve::new(1).is_some());
        assert!(HilbertCurve::new(31).is_some());
    }

    #[test]
    fn order_one_is_the_textbook_u() {
        let c = HilbertCurve::new(1).unwrap();
        // The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(c.index_of_cell(0, 0), 0);
        assert_eq!(c.index_of_cell(0, 1), 1);
        assert_eq!(c.index_of_cell(1, 1), 2);
        assert_eq!(c.index_of_cell(1, 0), 3);
    }

    #[test]
    fn round_trip_small_orders() {
        for order in 1..=6 {
            let c = HilbertCurve::new(order).unwrap();
            for d in 0..c.cells() {
                let (x, y) = c.cell_of_index(d);
                assert_eq!(c.index_of_cell(x, y), d, "order {order}, d {d}");
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_visiting_every_cell_once() {
        let c = HilbertCurve::new(5).unwrap();
        let mut seen = vec![false; c.cells() as usize];
        for x in 0..c.side() as u32 {
            for y in 0..c.side() as u32 {
                let d = c.index_of_cell(x, y) as usize;
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        // The defining property of the Hilbert curve: a unit step along the
        // curve is a unit step on the grid.
        let c = HilbertCurve::new(6).unwrap();
        let mut prev = c.cell_of_index(0);
        for d in 1..c.cells() {
            let cur = c.cell_of_index(d);
            let dx = (i64::from(cur.0) - i64::from(prev.0)).abs();
            let dy = (i64::from(cur.1) - i64::from(prev.1)).abs();
            assert_eq!(dx + dy, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn high_order_round_trip_spot_checks() {
        let c = HilbertCurve::new(31).unwrap();
        for &(x, y) in &[
            (0u32, 0u32),
            (u32::MAX / 2, u32::MAX / 2),
            (2_147_483_647, 0),
            (123_456_789, 98_765_432),
        ] {
            let d = c.index_of_cell(x, y);
            assert_eq!(c.cell_of_index(d), (x, y));
        }
    }
}
