//! Space-filling curves.
//!
//! STORM's RS-tree is built over a *Hilbert R-tree*: leaf entries are packed
//! in Hilbert-curve order so that spatially close points land in the same
//! disk block, and a *distributed* Hilbert R-tree range-partitions the curve
//! across shards. The Z-order (Morton) curve is provided as a cheaper,
//! lower-locality alternative used in ablation benchmarks.

pub mod hilbert;
pub mod hilbert_nd;
pub mod zorder;

pub use hilbert::HilbertCurve;
pub use hilbert_nd::{default_bits, hilbert_cell, hilbert_key};
pub use zorder::ZOrderCurve;

use crate::{Point2, Rect2};

/// A discrete 2-D space-filling curve over a `2^order × 2^order` grid.
pub trait SpaceFillingCurve {
    /// Bits per dimension.
    fn order(&self) -> u32;

    /// Maps grid cell `(x, y)` to its 1-D index along the curve.
    ///
    /// Coordinates must be `< 2^order`.
    fn index_of_cell(&self, x: u32, y: u32) -> u64;

    /// Inverse of [`SpaceFillingCurve::index_of_cell`].
    fn cell_of_index(&self, d: u64) -> (u32, u32);

    /// Maps a continuous point to a curve index by snapping it onto the grid
    /// induced by `bounds`. Points outside `bounds` are clamped.
    fn index_of_point(&self, bounds: &Rect2, p: &Point2) -> u64 {
        let side = (1u64 << self.order()) as f64;
        let cell = |lo: f64, hi: f64, v: f64| -> u32 {
            if hi <= lo {
                return 0;
            }
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            // `side - 1` keeps v == hi inside the last cell.
            ((t * side) as u64).min(side as u64 - 1) as u32
        };
        let x = cell(bounds.lo().x(), bounds.hi().x(), p.x());
        let y = cell(bounds.lo().y(), bounds.hi().y(), p.y());
        self.index_of_cell(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point2, Rect2};

    #[test]
    fn continuous_mapping_clamps_and_spans() {
        let c = HilbertCurve::new(8).unwrap();
        let bounds = Rect2::from_corners(Point2::xy(0.0, 0.0), Point2::xy(100.0, 100.0));
        // Outside points clamp to corners rather than wrapping.
        let lo = c.index_of_point(&bounds, &Point2::xy(-10.0, -10.0));
        let inside = c.index_of_point(&bounds, &Point2::xy(0.1, 0.1));
        assert_eq!(lo, inside);
        // The two extremes map to different cells.
        let hi = c.index_of_point(&bounds, &Point2::xy(1000.0, 1000.0));
        assert_ne!(lo, hi);
    }

    #[test]
    fn degenerate_bounds_map_to_cell_zero() {
        let c = HilbertCurve::new(4).unwrap();
        let bounds = Rect2::from_point(Point2::xy(5.0, 5.0));
        assert_eq!(c.index_of_point(&bounds, &Point2::xy(5.0, 5.0)), 0);
    }
}
