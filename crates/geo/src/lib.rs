//! Geometry substrate for the STORM system.
//!
//! This crate provides the low-level geometric building blocks every other
//! STORM crate relies on:
//!
//! * [`Point`] — a `D`-dimensional point over `f64`, with the common 2-D and
//!   3-D aliases [`Point2`] and [`Point3`];
//! * [`Rect`] — axis-aligned bounding boxes with the full algebra an R-tree
//!   needs (containment, intersection, enlargement, area, margin);
//! * space-filling curves ([`curve::hilbert`], [`curve::zorder`]) used to
//!   linearise 2-D space when bulk-loading Hilbert R-trees and when range
//!   partitioning data across shards;
//! * [`TimeRange`] and the spatio-temporal query shapes in [`stq`], which
//!   combine a spatial rectangle with a temporal interval exactly as STORM's
//!   query interface does ("a temporal range and a spatial region on a map").
//!
//! Everything here is deterministic and allocation-light; the types are
//! `Copy` where possible so they can be passed around R-tree internals
//! without indirection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
mod point;
mod rect;
pub mod stq;
mod time;

pub use point::{Point, Point2, Point3};
pub use rect::{Rect, Rect2, Rect3};
pub use stq::{StPoint, StQuery};
pub use time::TimeRange;

/// Errors produced by geometry constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// A rectangle was constructed with `lo[i] > hi[i]` for some axis `i`.
    InvalidRect {
        /// The axis on which the ordering was violated.
        axis: usize,
    },
    /// A coordinate was not a finite number (NaN or infinity).
    NonFiniteCoordinate,
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::InvalidRect { axis } => {
                write!(f, "invalid rectangle: lo > hi on axis {axis}")
            }
            GeoError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
        }
    }
}

impl std::error::Error for GeoError {}
