//! Property tests for the geometry substrate.

use proptest::prelude::*;
use storm_geo::curve::{HilbertCurve, SpaceFillingCurve, ZOrderCurve};
use storm_geo::{Point2, Rect2, StPoint, StQuery, TimeRange};

proptest! {
    #[test]
    fn hilbert_round_trip(order in 1u32..=31, x in 0u32..u32::MAX, y in 0u32..u32::MAX) {
        let c = HilbertCurve::new(order).unwrap();
        let mask = (c.side() - 1) as u32;
        let (x, y) = (x & mask, y & mask);
        let d = c.index_of_cell(x, y);
        prop_assert!(d < c.cells());
        prop_assert_eq!(c.cell_of_index(d), (x, y));
    }

    #[test]
    fn zorder_round_trip(order in 1u32..=31, x in 0u32..u32::MAX, y in 0u32..u32::MAX) {
        let c = ZOrderCurve::new(order).unwrap();
        let mask = (1u64 << order) as u32 - 1;
        let (x, y) = (x & mask, y & mask);
        let d = c.index_of_cell(x, y);
        prop_assert_eq!(c.cell_of_index(d), (x, y));
    }

    #[test]
    fn rect_union_contains_both(
        ax in -1e6f64..1e6, ay in -1e6f64..1e6, bx in -1e6f64..1e6, by in -1e6f64..1e6,
        cx in -1e6f64..1e6, cy in -1e6f64..1e6, dx in -1e6f64..1e6, dy in -1e6f64..1e6,
    ) {
        let r1 = Rect2::from_corners(Point2::xy(ax, ay), Point2::xy(bx, by));
        let r2 = Rect2::from_corners(Point2::xy(cx, cy), Point2::xy(dx, dy));
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
        prop_assert!(u.area() + 1e-9 >= r1.area().max(r2.area()));
    }

    #[test]
    fn rect_intersection_symmetric_and_contained(
        ax in -100f64..100.0, ay in -100f64..100.0, bx in -100f64..100.0, by in -100f64..100.0,
        cx in -100f64..100.0, cy in -100f64..100.0, dx in -100f64..100.0, dy in -100f64..100.0,
    ) {
        let r1 = Rect2::from_corners(Point2::xy(ax, ay), Point2::xy(bx, by));
        let r2 = Rect2::from_corners(Point2::xy(cx, cy), Point2::xy(dx, dy));
        prop_assert_eq!(r1.intersects(&r2), r2.intersects(&r1));
        match r1.intersection(&r2) {
            Some(i) => {
                prop_assert!(r1.intersects(&r2));
                prop_assert!(r1.contains_rect(&i));
                prop_assert!(r2.contains_rect(&i));
            }
            None => prop_assert!(!r1.intersects(&r2)),
        }
    }

    #[test]
    fn point_in_intersection_iff_in_both(
        ax in -100f64..100.0, ay in -100f64..100.0, bx in -100f64..100.0, by in -100f64..100.0,
        cx in -100f64..100.0, cy in -100f64..100.0, dx in -100f64..100.0, dy in -100f64..100.0,
        px in -100f64..100.0, py in -100f64..100.0,
    ) {
        let r1 = Rect2::from_corners(Point2::xy(ax, ay), Point2::xy(bx, by));
        let r2 = Rect2::from_corners(Point2::xy(cx, cy), Point2::xy(dx, dy));
        let p = Point2::xy(px, py);
        let in_both = r1.contains_point(&p) && r2.contains_point(&p);
        let in_inter = r1.intersection(&r2).is_some_and(|i| i.contains_point(&p));
        prop_assert_eq!(in_both, in_inter);
    }

    #[test]
    fn st_query_agrees_with_rect3(
        x in -100f64..100.0, y in -100f64..100.0, t in -1000i64..1000,
        qx in -100f64..100.0, qy in -100f64..100.0, qw in 0f64..50.0, qh in 0f64..50.0,
        t0 in -1000i64..1000, dur in 1i64..500,
    ) {
        let query = StQuery::new(
            Rect2::from_corners(Point2::xy(qx, qy), Point2::xy(qx + qw, qy + qh)),
            TimeRange::new(t0, t0 + dur),
        );
        let p = StPoint::new(x, y, t);
        let via_rect3 = query.to_rect3().unwrap().contains_point(&p.to_point3());
        prop_assert_eq!(query.contains(&p), via_rect3);
    }

    #[test]
    fn time_range_intersection_is_tightest(
        a0 in -1000i64..1000, al in 0i64..500,
        b0 in -1000i64..1000, bl in 0i64..500,
        t in -1500i64..1500,
    ) {
        let a = TimeRange::new(a0, a0 + al);
        let b = TimeRange::new(b0, b0 + bl);
        let i = a.intersection(&b);
        prop_assert_eq!(i.contains(t), a.contains(t) && b.contains(t));
    }
}
