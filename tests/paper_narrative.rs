//! The paper's §1 user stories, verified end-to-end: progressive quality,
//! the three termination modes, and mid-flight query replacement.

use storm::engine::interactive::{Event, InteractiveSession};
use storm::engine::session::CancelToken;
use storm::prelude::*;
use storm::store::Value;

fn energy_engine(n: usize, seed: u64) -> StormEngine {
    let records: Vec<StRecord> = (0..n)
        .map(|i| StRecord {
            point: StPoint::new((i % 500) as f64, ((i / 500) % 500) as f64, i as i64),
            body: Value::object([("kwh".into(), Value::Float(900.0 + ((i * 31) % 200) as f64))]),
        })
        .collect();
    let mut engine = StormEngine::new(seed);
    engine
        .create_dataset("energy", records, DatasetConfig::default())
        .unwrap();
    engine
}

#[test]
fn confidence_interval_tightens_over_progress_ticks() {
    let mut engine = energy_engine(100_000, 21);
    let mut widths = Vec::new();
    let _ = engine
        .execute_with(
            "ESTIMATE AVG(kwh) FROM energy RANGE 50 50 450 450 SAMPLES 4000",
            &CancelToken::new(),
            &mut |p| {
                if let TaskResult::Aggregate { estimate, .. } = &p.result {
                    widths.push(estimate.half_width(0.95));
                }
            },
        )
        .unwrap();
    assert!(widths.len() >= 10, "expected many progress ticks");
    // The CI half-width must shrink substantially start → finish and be
    // (weakly) decreasing across quarters.
    let first = widths[1]; // widths[0] can be infinite-ish early
    let last = *widths.last().unwrap();
    assert!(
        last < first / 3.0,
        "no convergence: first {first}, last {last}"
    );
    let quarter = widths.len() / 4;
    assert!(widths[quarter] >= widths[3 * quarter]);
}

#[test]
fn quality_mode_reports_what_it_promised() {
    // "the system can be asked to terminate a query whenever the
    // approximation quality has met a user specified quality requirement"
    let mut engine = energy_engine(200_000, 22);
    let outcome = engine
        .execute("ESTIMATE AVG(kwh) FROM energy CONFIDENCE 0.95 ERROR 0.001")
        .unwrap();
    assert_eq!(outcome.reason, StopReason::QualityReached);
    let est = outcome.estimate().unwrap();
    assert!(est.relative_error(0.95) <= 0.001 * 1.1);
    // True mean = 900 + mean((i*31)%200) ≈ 999.5; the CI must cover ~truth.
    assert!((est.value - 999.5).abs() < 999.5 * 0.003);
}

#[test]
fn best_effort_mode_returns_within_the_budget() {
    // "user specifies the amount of time s/he is willing to spend, and the
    // system provides the best possible approximation within that time"
    let mut engine = energy_engine(200_000, 23);
    let start = std::time::Instant::now();
    let outcome = engine
        .execute("ESTIMATE AVG(kwh) FROM energy WITHIN 25")
        .unwrap();
    let wall = start.elapsed().as_millis();
    assert_eq!(outcome.reason, StopReason::TimeBudget);
    assert!(wall < 1_000, "budget of 25ms took {wall}ms");
    assert!(outcome.samples > 0);
    assert!(outcome.estimate().unwrap().std_err.is_finite());
}

#[test]
fn interactive_requery_replays_the_papers_dialogue() {
    let engine = energy_engine(150_000, 24);
    let mut session = InteractiveSession::start(engine);
    // Query 1: unbounded exploration.
    let q1 = session.submit("ESTIMATE AVG(kwh) FROM energy RANGE 0 0 499 499");
    // Wait until its estimate is "good enough" (a few ticks), then switch.
    let mut q2 = None;
    let mut q1_cancelled = false;
    let mut q2_finished = false;
    let events = session.events().clone();
    for event in events.iter() {
        match event {
            Event::Progress { query_id, progress }
                if query_id == q1 && q2.is_none() && progress.samples >= 192 =>
            {
                q2 = Some(session.submit(
                    "ESTIMATE AVG(kwh) FROM energy RANGE 100 100 300 300 \
                     CONFIDENCE 0.98 ERROR 0.01",
                ));
            }
            Event::Finished { query_id, outcome } if query_id == q1 => {
                q1_cancelled = outcome.reason == StopReason::Cancelled;
            }
            Event::Finished { query_id, outcome } if Some(query_id) == q2 => {
                assert_eq!(outcome.reason, StopReason::QualityReached);
                q2_finished = true;
                break;
            }
            Event::Error { message, .. } => panic!("{message}"),
            _ => {}
        }
    }
    assert!(q1_cancelled, "query 1 must have been pre-empted");
    assert!(q2_finished);
    session.shutdown();
}

#[test]
fn exhausted_queries_report_exact_answers_with_zero_error() {
    let mut engine = energy_engine(3_000, 25);
    let outcome = engine
        .execute("ESTIMATE AVG(kwh) FROM energy RANGE 0 0 40 40")
        .unwrap();
    assert_eq!(outcome.reason, StopReason::Exhausted);
    let est = outcome.estimate().unwrap();
    // Without-replacement FPC drives the error to exactly zero.
    assert_eq!(est.std_err, 0.0);
    assert_eq!(est.relative_error(0.95), 0.0);
}
