//! Cross-crate integration: connector → store → indexes → query →
//! updates, through the public facade only.

use storm::connector::{CsvSource, FieldMapping, JsonLinesSource};
use storm::prelude::*;
use storm::store::Value;

fn csv_fixture(rows: usize) -> String {
    let mut csv = String::from("lon,lat,ts,val,tag\n");
    for i in 0..rows {
        use std::fmt::Write;
        let _ = writeln!(
            csv,
            "{},{},{},{},r{}",
            (i % 50) as f64 / 10.0,
            (i / 50) as f64 / 10.0,
            i,
            (i % 7) as f64,
            i % 3
        );
    }
    csv
}

#[test]
fn csv_import_query_update_cycle() {
    let csv = csv_fixture(5_000);
    let mut engine = StormEngine::new(11);
    let mapping = FieldMapping::new("lon", "lat", Some("ts"));
    let mut source = CsvSource::new(csv.as_bytes());
    let report = engine
        .import("d", &mut source, &mapping, DatasetConfig::default())
        .unwrap();
    assert_eq!(report.imported, 5_000);

    // Exact count through the full stack.
    let outcome = engine
        .execute("ESTIMATE COUNT FROM d RANGE 0 0 4.9 9.9")
        .unwrap();
    assert!(matches!(outcome.result, TaskResult::Count { q: 5_000 }));

    // AVG estimate converges to the true mean of val = i % 7 → 3 - ish.
    let truth = (0..5_000).map(|i| (i % 7) as f64).sum::<f64>() / 5_000.0;
    let outcome = engine
        .execute("ESTIMATE AVG(val) FROM d SAMPLES 2500")
        .unwrap();
    let est = outcome.estimate().unwrap();
    assert!((est.value - truth).abs() < 0.15, "{} vs {truth}", est.value);

    // Remove everything in a sub-region via the update manager.
    let doomed: Vec<DocId> = engine
        .dataset("d")
        .unwrap()
        .items()
        .iter()
        .filter(|it| it.point.get(0) < 1.0 && it.point.get(1) < 1.0)
        .map(|it| DocId(it.id))
        .collect();
    assert!(!doomed.is_empty());
    for id in &doomed {
        assert!(engine.remove("d", *id).unwrap());
    }
    let outcome = engine
        .execute("ESTIMATE COUNT FROM d RANGE 0 0 0.999 0.999")
        .unwrap();
    assert!(matches!(outcome.result, TaskResult::Count { q: 0 }));

    // And re-insert a few.
    for j in 0..3 {
        engine
            .insert(
                "d",
                StRecord {
                    point: StPoint::new(0.5, 0.5, 10 + j),
                    body: Value::object([("val".into(), Value::Float(42.0))]),
                },
            )
            .unwrap();
    }
    let outcome = engine
        .execute("ESTIMATE AVG(val) FROM d RANGE 0 0 0.999 0.999")
        .unwrap();
    assert_eq!(outcome.estimate().unwrap().value, 42.0);
    assert_eq!(outcome.reason, StopReason::Exhausted);
}

#[test]
fn jsonl_import_round_trips_through_engine() {
    let mut jsonl = String::new();
    for i in 0..200 {
        use std::fmt::Write;
        let _ = writeln!(
            jsonl,
            "{{\"geo\": {{\"x\": {}, \"y\": {}}}, \"when\": {}, \"speed\": {}}}",
            i % 20,
            i / 20,
            1000 + i,
            i * 2
        );
    }
    let mut engine = StormEngine::new(12);
    let mapping = FieldMapping::new("geo.x", "geo.y", Some("when"));
    let mut source = JsonLinesSource::new(jsonl.as_bytes());
    let report = engine
        .import("moves", &mut source, &mapping, DatasetConfig::default())
        .unwrap();
    assert_eq!(report.imported, 200);
    // Nested-attribute lookups flow to estimators through the dotted path.
    let outcome = engine
        .execute("ESTIMATE AVG(speed) FROM moves TIME 1000 1100")
        .unwrap();
    // Records 0..100 → speed 0,2,…,198 → mean 99.
    assert!((outcome.estimate().unwrap().value - 99.0).abs() < 1e-9);
}

#[test]
fn store_persistence_rebuilds_identical_answers() {
    use storm::store::persist;
    // Build a collection, save it, reload it, rebuild a dataset, and check
    // answers agree.
    let mut collection = storm::store::Collection::new("obs");
    for i in 0..500i64 {
        collection.insert(Value::object([
            ("x".into(), Value::Float((i % 25) as f64)),
            ("y".into(), Value::Float((i / 25) as f64)),
            ("t".into(), Value::Int(i)),
            ("m".into(), Value::Float((i % 11) as f64)),
        ]));
    }
    let path = std::env::temp_dir().join(format!("storm-e2e-{}.jsonl", std::process::id()));
    persist::save(&collection, &path).unwrap();
    let reloaded = persist::load("obs", &path).unwrap();
    assert_eq!(reloaded.len(), 500);

    let to_engine = |col: &storm::store::Collection, seed: u64| -> f64 {
        let records: Vec<StRecord> = col
            .scan()
            .map(|doc| StRecord {
                point: StPoint::new(
                    doc.number("x").unwrap(),
                    doc.number("y").unwrap(),
                    doc.int("t").unwrap(),
                ),
                body: doc.body.clone(),
            })
            .collect();
        let mut engine = StormEngine::new(seed);
        engine
            .create_dataset("obs", records, DatasetConfig::default())
            .unwrap();
        engine
            .execute("ESTIMATE AVG(m) FROM obs RANGE 5 5 20 15")
            .unwrap()
            .estimate()
            .unwrap()
            .value
    };
    // Exhaustive (unbounded) queries are exact up to Welford's
    // order-dependent float rounding.
    let a = to_engine(&collection, 1);
    let b = to_engine(&reloaded, 2);
    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    std::fs::remove_file(path).ok();
}

#[test]
fn dataset_bookkeeping_survives_heavy_churn() {
    let mut engine = StormEngine::new(13);
    engine
        .create_dataset(
            "churn",
            Vec::new(),
            DatasetConfig {
                fanout: 8,
                ..Default::default()
            },
        )
        .unwrap();
    let mut live = Vec::new();
    for round in 0..40u64 {
        for j in 0..25u64 {
            let i = round * 25 + j;
            let id = engine
                .insert(
                    "churn",
                    StRecord {
                        point: StPoint::new((i % 13) as f64, (i % 17) as f64, i as i64),
                        body: Value::object([("v".into(), Value::Float(i as f64))]),
                    },
                )
                .unwrap();
            live.push(id);
        }
        // Delete ~third of the oldest.
        let cut = live.len() / 3;
        for id in live.drain(..cut) {
            assert!(engine.remove("churn", id).unwrap());
        }
        let expected = live.len();
        let outcome = engine.execute("ESTIMATE COUNT FROM churn").unwrap();
        match outcome.result {
            TaskResult::Count { q } => assert_eq!(q, expected, "round {round}"),
            other => panic!("{other:?}"),
        }
    }
}
