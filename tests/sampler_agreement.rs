//! Cross-method guarantees at the sampler layer: every method samples the
//! same population, uniformly, and exhausts to the exact result set.
//!
//! The statistical machinery (chi-square gates, KS distance, WOR set
//! equality, CI coverage) lives in `storm-testkit` and is shared with the
//! fault-matrix and bench suites.

use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashSet;
use storm::prelude::*;
use storm::sampling::RsTreeConfig;
use storm::workload::{osm, queries};
use storm_testkit::{
    assert_exhausts_to, assert_same_distribution, assert_uniform, expected_ids, CoverageCheck,
};

fn setup(n: usize) -> (osm::OsmData, Rect2, usize) {
    let data = osm::generate(n, 99);
    let (query, q) = queries::rect_with_selectivity(&data.items, 0.05, 3).unwrap();
    (data, query, q)
}

#[test]
fn all_methods_exhaust_to_the_same_set() {
    let (data, query, q) = setup(20_000);
    assert!(q > 100);
    let expected: HashSet<u64> = expected_ids(&data.items, |it| query.contains_point(&it.point));
    let tree = RTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(32),
        storm::rtree::BulkMethod::Hilbert,
    );
    let mut rng = StdRng::seed_from_u64(5);

    let mut qf = QueryFirst::new(&tree, &query, SampleMode::WithoutReplacement);
    assert_exhausts_to(&mut qf, &mut rng, &expected, "QueryFirst");

    let mut sf = SampleFirst::new(&data.items, query, SampleMode::WithoutReplacement);
    assert_exhausts_to(&mut sf, &mut rng, &expected, "SampleFirst");

    let mut rp = RandomPath::new(&tree, query, SampleMode::WithoutReplacement)
        .with_attempt_budget(2_000_000);
    assert_exhausts_to(&mut rp, &mut rng, &expected, "RandomPath");

    let ls = LsTree::bulk_load(data.items.clone(), RTreeConfig::with_fanout(32), 17);
    let mut lss = ls.sampler(query);
    assert_exhausts_to(&mut lss, &mut rng, &expected, "LS-tree");

    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(32));
    let mut rss = rs.sampler(query, SampleMode::WithoutReplacement);
    assert_exhausts_to(&mut rss, &mut rng, &expected, "RS-tree");
}

#[test]
fn estimates_from_every_method_agree_statistically() {
    let (data, query, q) = setup(50_000);
    let truth = data.exact_avg_altitude(&query).unwrap();
    let tree = RTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(64),
        storm::rtree::BulkMethod::Hilbert,
    );
    let ls = LsTree::bulk_load(data.items.clone(), RTreeConfig::with_fanout(64), 7);
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(64));
    let mut rng = StdRng::seed_from_u64(6);
    let k = (q / 4).clamp(500, 4000);

    let check = |name: &str, samples: Vec<Item<2>>| -> Vec<f64> {
        let mut stat = OnlineStat::without_replacement(q);
        let values: Vec<f64> = samples
            .iter()
            .map(|item| data.altitudes[item.id as usize])
            .collect();
        for &v in &values {
            stat.push(v);
        }
        let est = stat.mean_estimate();
        let h = est.half_width(0.999);
        assert!(
            (est.value - truth).abs() <= h.max(truth.abs() * 0.05),
            "{name}: {} vs truth {truth} (±{h})",
            est.value
        );
        values
    };

    let mut qf = QueryFirst::new(&tree, &query, SampleMode::WithoutReplacement);
    let qf_values = check("QueryFirst", qf.draw(k, &mut rng));
    let mut sf = SampleFirst::new(&data.items, query, SampleMode::WithReplacement);
    check("SampleFirst", sf.draw(k, &mut rng));
    let mut rp = RandomPath::new(&tree, query, SampleMode::WithReplacement);
    check("RandomPath", rp.draw(k, &mut rng));
    let mut lss = ls.sampler(query);
    check("LS-tree", lss.draw(k, &mut rng));
    let mut rss = rs.sampler(query, SampleMode::WithoutReplacement);
    let rs_values = check("RS-tree", rss.draw(k, &mut rng));

    // Beyond matching the truth pointwise, the value streams drawn by the
    // two index samplers must be draws from the same distribution.
    assert_same_distribution(&qf_values, &rs_values, "QueryFirst vs RS-tree");
}

#[test]
fn rs_first_samples_match_marginal_frequencies_of_ls() {
    // Both index samplers must draw uniformly: compare per-item first-draw
    // frequencies on a small result set via chi-square.
    let data = osm::generate(2_000, 5);
    let (query, q) = queries::rect_with_selectivity(&data.items, 0.01, 9).unwrap();
    assert!((10..100).contains(&q), "q = {q}");
    let trials = 4000;
    let mut rng = StdRng::seed_from_u64(8);
    let mut counts: std::collections::HashMap<u64, u64> = Default::default();
    for t in 0..trials {
        // Fresh RS each trial isolates the per-query distribution.
        let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(16));
        let mut s = rs.sampler(query, SampleMode::WithoutReplacement);
        let first = s.next_sample(&mut rng).unwrap();
        *counts.entry(first.id).or_default() += 1;
        let _ = t;
    }
    assert_eq!(counts.len(), q, "some items never drawn first");
    let freq: Vec<u64> = counts.values().copied().collect();
    assert_uniform(&freq, "RS-tree first draws");
}

#[test]
fn confidence_intervals_cover_the_truth() {
    // The paper's honesty contract: a 95% interval reported after k draws
    // contains the exact answer in at least ~95% of repeated runs.
    let (data, query, q) = setup(20_000);
    let truth = data.exact_avg_altitude(&query).unwrap();
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(32));
    let mut coverage = CoverageCheck::new();
    for trial in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(1000 + trial);
        let mut s = rs.sampler(query, SampleMode::WithReplacement);
        let mut stat = OnlineStat::new();
        for item in s.draw(200, &mut rng) {
            stat.push(data.altitudes[item.id as usize]);
        }
        let est = stat.mean_estimate();
        coverage.record(est.value, est.half_width(0.95), truth);
        let _ = q;
    }
    coverage.assert_at_least(0.95, "RS-tree WR mean intervals");
}

#[test]
fn with_replacement_streams_are_unbounded() {
    let (data, query, _q) = setup(5_000);
    let tree = RTree::bulk_load(
        data.items.clone(),
        RTreeConfig::with_fanout(32),
        storm::rtree::BulkMethod::Hilbert,
    );
    let mut rng = StdRng::seed_from_u64(10);
    let mut rp = RandomPath::new(&tree, query, SampleMode::WithReplacement);
    let mut rs = RsTree::bulk_load(data.items.clone(), RsTreeConfig::with_fanout(32));
    let mut rss = rs.sampler(query, SampleMode::WithReplacement);
    for _ in 0..2_000 {
        assert!(rp.next_sample(&mut rng).is_some());
        assert!(rss.next_sample(&mut rng).is_some());
    }
}
